(** Dead-binding elimination: drop top-level bindings unreachable from the
    program's roots ([main] when present, otherwise every binding is kept). *)

open Tc_support
module Core = Tc_core_ir.Core

let program ?(roots = []) (p : Core.program) : Core.program =
  let roots =
    match (p.p_main, roots) with
    | Some m, rs -> m :: rs
    | None, [] ->
        (* no main and no explicit roots: keep everything *)
        List.concat_map
          (fun g -> List.map (fun (b : Core.bind) -> b.b_name) (Core.binds_of_group g))
          p.p_binds
    | None, rs -> rs
  in
  let defs : Core.bind Ident.Tbl.t = Ident.Tbl.create 128 in
  List.iter
    (fun g ->
      List.iter
        (fun (b : Core.bind) -> Ident.Tbl.replace defs b.b_name b)
        (Core.binds_of_group g))
    p.p_binds;
  let reachable = Ident.Tbl.create 128 in
  let rec visit name =
    if not (Ident.Tbl.mem reachable name) then begin
      Ident.Tbl.add reachable name ();
      match Ident.Tbl.find_opt defs name with
      | Some b -> Ident.Set.iter visit (Core.free_vars b.b_expr)
      | None -> ()
    end
  in
  List.iter visit roots;
  let keep (b : Core.bind) = Ident.Tbl.mem reachable b.b_name in
  {
    p with
    p_binds =
      List.filter_map
        (function
          | Core.Nonrec b -> if keep b then Some (Core.Nonrec b) else None
          | Core.Rec bs -> (
              match List.filter keep bs with
              | [] -> None
              | bs' -> Some (Core.Rec bs')))
        p.p_binds;
  }
