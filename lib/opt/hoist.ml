(** Dictionary hoisting (paper §8.8, "Avoiding Unnecessary Dictionary
    Construction").

    A dictionary computation whose free variables are all bound outside a
    lambda is floated out of that lambda, so it is built once instead of
    once per call — the paper's [eqList] fix, a full-laziness transform
    restricted to dictionary expressions. Combined with inner entry points
    ({!Inner_entry}), recursive calls then share the hoisted dictionaries.

    Applied to each binding of the form [\dicts -> \args -> body]: maximal
    dictionary computations in [body] that depend only on the dictionary
    parameters (or on enclosing scope) are bound between the two lambdas. *)

open Tc_support
module Core = Tc_core_ir.Core

let is_dict_param = Inner_entry.is_dict_param

(** Is [e] a dictionary computation: a [MkDict], a selection producing a
    (sub)dictionary, or an application of a dictionary former? *)
let is_dict_expr (e : Core.expr) : bool =
  match e with
  | Core.MkDict _ -> true
  | Core.App _ -> (
      match Core.unfold_app e [] with
      | Core.Var f, _ -> is_dict_param f || (
          let s = Ident.text f in
          String.length s >= 2 && s.[0] = 'd' && s.[1] = '$')
      | _ -> false)
  | _ -> false

(** Collect maximal hoistable dictionary expressions in [e]: dictionary
    computations whose free variables all come from outside [e] (the
    initial [bound] set holds the lambda parameters they must avoid).
    Returns the rewritten expression and the hoisted bindings. Identical
    computations are shared. *)
let hoist_from (bound0 : Ident.Set.t) (e : Core.expr) :
    Core.expr * Core.bind list =
  let hoisted : (Core.expr * Ident.t) list ref = ref [] in
  let find_shared e =
    (* structural sharing of identical hoisted expressions *)
    let repr = Fmt.str "%a" Tc_core_ir.Core_pp.pp e in
    match
      List.find_opt
        (fun (e', _) -> Fmt.str "%a" Tc_core_ir.Core_pp.pp e' = repr)
        !hoisted
    with
    | Some (_, name) -> name
    | None ->
        let name = Ident.gensym "d$h" in
        hoisted := (e, name) :: !hoisted;
        name
  in
  let rec go bound e =
    if is_dict_expr e && Ident.Set.disjoint (Core.free_vars e) bound then
      Core.Var (find_shared e)
    else descend bound e
  and descend bound e =
    match e with
    | Core.Lam (vs, b) ->
        let bound' = List.fold_left (fun s v -> Ident.Set.add v s) bound vs in
        Core.Lam (vs, go bound' b)
    | Core.Let (Core.Nonrec bd, body) ->
        let bd' = { bd with b_expr = go bound bd.b_expr } in
        Core.Let (Core.Nonrec bd', go (Ident.Set.add bd.b_name bound) body)
    | Core.Let (Core.Rec bds, body) ->
        let bound' =
          List.fold_left
            (fun s (b : Core.bind) -> Ident.Set.add b.b_name s)
            bound bds
        in
        Core.Let
          ( Core.Rec
              (List.map
                 (fun (b : Core.bind) -> { b with b_expr = go bound' b.b_expr })
                 bds),
            go bound' body )
    | Core.Case (s, alts, d) ->
        Core.Case
          ( go bound s,
            List.map
              (fun (a : Core.alt) ->
                let bound' =
                  List.fold_left
                    (fun s' v -> Ident.Set.add v s')
                    bound a.alt_vars
                in
                { a with alt_body = go bound' a.alt_body })
              alts,
            Option.map (go bound) d )
    | _ -> Core.map_sub (go bound) e
  in
  let e' = go bound0 e in
  (e', List.rev_map (fun (e, name) -> { Core.b_name = name; b_expr = e }) !hoisted)

(** Hoist within one top-level binding. *)
let transform_bind (b : Core.bind) : Core.bind =
  match b.b_expr with
  | Core.Lam (vs, body) -> (
      match Inner_entry.dict_prefix vs with
      | [], _ -> b
      | dict_vs, inner_vs ->
          let body_lam =
            if inner_vs = [] then body else Core.Lam (inner_vs, body)
          in
          (* [hoist_from] tracks binders itself, so starting from an empty
             bound set floats exactly the computations that depend only on
             the dictionary parameters (or on enclosing scope) *)
          let body', hoisted = hoist_from Ident.Set.empty body_lam in
          if hoisted = [] then b
          else
            let with_lets =
              List.fold_right
                (fun h acc -> Core.Let (Core.Nonrec h, acc))
                hoisted body'
            in
            { b with b_expr = Core.Lam (dict_vs, with_lets) })
  | _ -> b

let program (p : Core.program) : Core.program =
  {
    p with
    p_binds =
      List.map
        (function
          | Core.Nonrec b -> Core.Nonrec (transform_bind b)
          | Core.Rec bs -> Core.Rec (List.map transform_bind bs))
        p.p_binds;
  }
