(** Inner entry points for recursive overloaded functions (paper §6.3/§7):
    [f = \d.. x.. -> ..f d.. e..] becomes
    [f = \d.. -> letrec f' = \x.. -> ..f' e.. in f'] when every recursive
    call passes the dictionaries unchanged. *)

open Tc_support

(** Dictionary parameters are recognized by their ["d$"] prefix. *)
val is_dict_param : Ident.t -> bool

(** Split a binder list into its leading dictionary parameters and the
    rest. *)
val dict_prefix : Ident.t list -> Ident.t list * Ident.t list

(** Names bound by one core node (for shadow-aware traversals). *)
val binders_of : Tc_core_ir.Core.expr -> Ident.t list

val program : Tc_core_ir.Core.program -> Tc_core_ir.Core.program
