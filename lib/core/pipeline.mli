(** The full compilation pipeline — the library's main entry point.

    [compile] takes MiniHaskell source through lex → layout → parse →
    fixity resolution → static analysis (§4) → desugaring/match
    compilation → type inference with dictionary conversion (§5–§6) →
    dictionary generation → linted core program. [run] evaluates the
    result with the instrumented evaluator; [optimize] applies §8/§9
    optimizer passes; [compile_tags] uses the §3 run-time tag strategy
    instead of dictionaries. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Scheme = Tc_types.Scheme
module Stats = Tc_types.Stats
module Fixity = Tc_syntax.Fixity
module Infer = Tc_infer.Infer
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters

type options = {
  infer : Infer.options;
  include_prelude : bool;
  lint : bool;
}

val default_options : options

type compiled = {
  env : Class_env.t;
  core : Core.program;
  schemes : (Ident.t * Scheme.t) list;       (** all top-level bindings *)
  user_schemes : (Ident.t * Scheme.t) list;  (** excluding the prelude *)
  warnings : Diagnostic.t list;
  checker_stats : Stats.t;
  options : options;
  venv : Infer.venv;     (** tooling: the final value environment *)
  fixities : Fixity.env; (** tooling: the program's fixity table *)
}

(** Compile a program under the dictionary-passing strategy. Raises
    {!Diagnostic.Error} on any compile-time error. *)
val compile : ?opts:options -> ?file:string -> string -> compiled

type run_result = {
  value : Eval.value;
  rendered : string;
  counters : Counters.t;
}

(** Evaluate [main] (or [entry]). [fuel] bounds evaluation steps
    (negative = unlimited). *)
val run :
  ?mode:[ `Lazy | `Strict ] ->
  ?fuel:int ->
  ?entry:Ident.t ->
  compiled ->
  run_result

type backend = [ `Tree | `Vm ]

(** Lower a compiled program to VM bytecode ([mode] is baked in at
    compile time). *)
val bytecode :
  ?mode:[ `Lazy | `Strict ] -> compiled -> Tc_vm.Bytecode.program

type exec_result = {
  x_rendered : string;
  x_counters : Counters.t;
}

(** Backend-agnostic execution: the tree evaluator or the bytecode VM.
    Both produce the same rendered value and dictionary counters. [fuel]
    bounds evaluation steps (tree) or instructions (VM); [max_frames]
    bounds the VM frame stack. *)
val exec :
  ?backend:backend ->
  ?mode:[ `Lazy | `Strict ] ->
  ?fuel:int ->
  ?max_frames:int ->
  ?entry:Ident.t ->
  compiled ->
  exec_result

val compile_and_run :
  ?opts:options ->
  ?file:string ->
  ?mode:[ `Lazy | `Strict ] ->
  ?fuel:int ->
  string ->
  compiled * run_result

(** Type check only; user bindings with rendered qualified types. *)
val check_types : ?opts:options -> ?file:string -> string -> (string * string) list

(** The qualified type of a standalone expression against a compiled
    program's environment (the REPL's [:type]). *)
val expression_type : compiled -> string -> string

(** Apply an optimizer pipeline (re-linting the result). *)
val optimize : Tc_opt.Opt.pass list -> compiled -> compiled

(** Compile under the §3 run-time tag dispatch strategy. The program is
    still type checked; methods overloaded only in their result type are
    rejected in user code. *)
val compile_tags : ?opts:options -> ?file:string -> string -> compiled
