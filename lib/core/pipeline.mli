(** The full compilation pipeline — the library's main entry point.

    [compile] takes MiniHaskell source through lex → layout → parse →
    fixity resolution → static analysis (§4) → desugaring/match
    compilation → type inference with dictionary conversion (§5–§6) →
    dictionary generation → linted core program. One {!options} record
    selects the implementation {!strategy} (nested dictionaries, flat
    dictionaries, or §3 run-time tags) and carries the {!Tc_obs.Trace}
    sink the whole pipeline reports into (context reduction, placeholder
    life cycle, instance lookups, defaulting, optimizer passes).

    [exec] evaluates the result on either backend — the instrumented tree
    evaluator or the bytecode VM — and can collect a per-call-site
    dispatch profile ({!Tc_obs.Profile}); [optimize] applies §8/§9
    optimizer passes, reporting per-pass deltas to the trace sink. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Scheme = Tc_types.Scheme
module Stats = Tc_types.Stats
module Fixity = Tc_syntax.Fixity
module Infer = Tc_infer.Infer
module Core = Tc_core_ir.Core
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters
module Budget = Tc_resilience.Budget

(** How overloading is implemented (paper §3, §4, §8.1). *)
type strategy =
  | Dicts       (** dictionary passing, nested superclass layout (§4) *)
  | Dicts_flat  (** dictionary passing, flat layout (§8.1) *)
  | Tags        (** run-time tag dispatch (§3) *)

val strategy_name : strategy -> string

(** How the [Specialise] optimizer pass is driven (paper §9 +
    profile-guided hotness). With [spec_profile] loaded — an
    [mhc profile --emit-spec] artifact parsed by
    {!Tc_obs.Profile.spec_of_json} — only overloaded bindings whose
    bodies account for at least [spec_threshold] profiled dispatches are
    cloned at their concrete instance types; the cold tail keeps
    dictionary dispatch. Without a profile every overloaded binding is a
    candidate (the historical static behavior). [spec_max_clones]
    ([<= 0] disables cloning) and [spec_max_growth] (program-size
    multiple; [<= 0] uncapped) bound code growth. *)
type spec_options = {
  spec_profile : Tc_obs.Profile.spec option;
  spec_threshold : int;
  spec_max_clones : int;
  spec_max_growth : float;
}

(** No profile, threshold 1, 2000 clones, no growth cap. *)
val default_spec : spec_options

type options = {
  strategy : strategy;
  overloaded_literals : bool;
      (** integer literals via [fromInt] ([Num a => a]) *)
  defaulting : bool;  (** resolve ambiguous numeric contexts *)
  include_prelude : bool;
  lint : bool;
  max_errors : int;
      (** cap on errors recorded by {!compile_collect} before it gives up
          on the file; [<= 0] means unlimited (default 100) *)
  specialise : spec_options;
      (** drives the [Specialise] pass in {!optimize};
          {!default_spec} by default *)
  trace : Tc_obs.Trace.t;
      (** compile-time event sink; {!Tc_obs.Trace.none} (off) by default *)
  metrics : Tc_obs.Metrics.t;
      (** metrics registry every stage reports phase spans into — lex,
          layout, parse, fixity, static analysis, desugaring, inference,
          dictionary construction, final resolution, normalization, each
          optimizer pass, VM lowering, evaluation and rendering — as
          wall-clock nanoseconds and allocated words under nested paths
          like ["compile/infer"]; {!Tc_obs.Metrics.disabled} (off, and
          allocation-free) by default *)
  rtrace : Tc_obs.Rtrace.t;
      (** per-request flight recorder: every span observation is also
          appended as a trace-ID-tagged event when this is live and a
          sampled trace is current on the domain (see
          {!Tc_obs.Rtrace}); requires a live [metrics] registry to emit
          anything; {!Tc_obs.Rtrace.disabled} (off, and allocation-free)
          by default *)
}

val default_options : options

(** The checker-level options implied by the pipeline options. *)
val infer_options : options -> Infer.options

(** Canonical rendering of the artifact-relevant {!spec_options} (profile
    digest, threshold, budgets) — compile caches must fold this into
    their keys so differently-specialized artifacts never collide. *)
val spec_signature : options -> string

type compiled = {
  env : Class_env.t;
  core : Core.program;
  schemes : (Ident.t * Scheme.t) list;       (** all top-level bindings *)
  user_schemes : (Ident.t * Scheme.t) list;  (** excluding the prelude *)
  warnings : Diagnostic.t list;
  checker_stats : Stats.t;
  options : options;
  spec_report : Tc_opt.Specialise.report option;
      (** what the last [Specialise] pass did, once {!optimize} ran one *)
  venv : Infer.venv;     (** tooling: the final value environment *)
  fixities : Fixity.env; (** tooling: the program's fixity table *)
}

(** Compile a program under [opts.strategy]. Raises {!Diagnostic.Error} on
    any compile-time error. Under {!Tags} the program is still type checked
    (methods overloaded only in their result type are rejected in user
    code) before the independent §3 translation. *)
val compile : ?opts:options -> ?file:string -> string -> compiled

(** The outcome of an accumulating compile: every diagnostic recorded (in
    issue order — sort with {!Diagnostic.sort} for display), and the
    compiled artifact when, and only when, no error was recorded.
    Warnings alone do not suppress the artifact. *)
type checked = {
  diagnostics : Diagnostic.t list;
  artifact : compiled option;
}

(** Compile, collecting every diagnostic instead of raising on the first
    error. The front end recovers at natural boundaries — the parser
    resynchronizes at the next top-level declaration; static analysis
    skips a bad declaration; a failed binding group's binders get an error
    scheme that unifies with anything (so one type error never cascades);
    each unresolved placeholder reports independently — and every stage is
    wrapped in an ICE guard that turns an unexpected exception into an
    "internal error in <stage>" diagnostic of severity [Bug]. At most
    [opts.max_errors] errors are recorded. Never raises. *)
val compile_collect : ?opts:options -> ?file:string -> string -> checked

type backend = [ `Tree | `Vm ]

(** What executing a compiled program produced, on either backend. *)
type result = {
  rendered : string;             (** the rendered value of [main]/[entry] *)
  counters : Counters.t;         (** aggregate dictionary-operation counts *)
  value : Eval.value option;     (** the raw value ([`Tree] backend only) *)
  profile : Tc_obs.Profile.report option;
      (** per-site dispatch profile, when requested *)
}

(** Lower a compiled program to VM bytecode ([mode] is baked in at
    compile time). *)
val bytecode :
  ?mode:[ `Lazy | `Strict ] -> compiled -> Tc_vm.Bytecode.program

(** Backend-agnostic execution: the tree evaluator ([`Tree], the default)
    or the bytecode VM ([`Vm]). Both produce the same rendered value and
    dictionary counters. [budget] (default
    {!Tc_resilience.Budget.unlimited}) bounds steps, frames, wall clock,
    allocations and output size; each backend's unit for steps and frames
    is documented in {!Tc_resilience.Budget}. Exhausting any limit raises
    the classified {!Tc_resilience.Budget.Exhausted} identically on both
    back ends (a native [Stack_overflow] on the tree backend is reported
    as [Frames] exhaustion). [~profile:true] additionally charges every
    [Sel]/[MkDict] executed to its compile-time dispatch site; the
    per-site totals sum exactly to the aggregate [counters]. *)
val exec :
  ?backend:backend ->
  ?mode:[ `Lazy | `Strict ] ->
  ?budget:Budget.t ->
  ?entry:Ident.t ->
  ?profile:bool ->
  compiled ->
  result

(** Type check only; user bindings with rendered qualified types. *)
val check_types : ?opts:options -> ?file:string -> string -> (string * string) list

(** The qualified type of a standalone expression against a compiled
    program's environment (the REPL's [:type]). *)
val expression_type : compiled -> string -> string

(** Apply an optimizer pipeline (re-linting the result). Each pass reports
    an [Opt_pass] event — program size and static [Sel]/[MkDict] deltas —
    to the compile's trace sink. The [Specialise] pass runs under
    [options.specialise]: a loaded profile is remapped onto the current
    core's site table ({!Tc_obs.Profile.counts_for}) so only hot bindings
    are cloned, and the pass's typed report lands in [spec_report], in
    [opt/spec/*] metrics counters, and in a [Spec_report] trace event. *)
val optimize : Tc_opt.Opt.pass list -> compiled -> compiled
