(** The full compilation pipeline — the library's main entry point.

    [compile] takes MiniHaskell source text through:
    lex → layout → parse → fixity resolution → static analysis (§4) →
    desugaring/match compilation → type inference with dictionary
    conversion (§5–6) → dictionary generation → core program. One
    [options] record selects the implementation strategy (nested
    dictionaries, flat dictionaries, or §3 run-time tags) and carries the
    observability sink ({!Tc_obs.Trace}) that the whole pipeline reports
    into.

    [exec] evaluates the result on either backend (tree evaluator or
    bytecode VM), optionally collecting a per-call-site dispatch profile
    ({!Tc_obs.Profile}). *)

open Tc_support
module Ast = Tc_syntax.Ast
module Parser = Tc_syntax.Parser
module Fixity = Tc_syntax.Fixity
module Class_env = Tc_types.Class_env
module Static = Tc_types.Static
module Scheme = Tc_types.Scheme
module Stats = Tc_types.Stats
module Desugar = Tc_desugar.Desugar
module Kernel = Tc_desugar.Kernel
module Infer = Tc_infer.Infer
module Prims = Tc_infer.Prims
module Core = Tc_core_ir.Core
module Lint = Tc_core_ir.Lint
module Scc = Tc_core_ir.Scc
module Layout = Tc_dicts.Layout
module Construct = Tc_dicts.Construct
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters
module Trace = Tc_obs.Trace
module Rtrace = Tc_obs.Rtrace
module Profile = Tc_obs.Profile
module Metrics = Tc_obs.Metrics
module Span = Tc_obs.Span
module Budget = Tc_resilience.Budget
module Inject = Tc_resilience.Inject

let err = Diagnostic.errorf

(* ------------------------------------------------------------------ *)
(* Options.                                                            *)
(* ------------------------------------------------------------------ *)

type strategy =
  | Dicts       (* dictionary passing, nested superclass layout (§4) *)
  | Dicts_flat  (* dictionary passing, flat layout (§8.1) *)
  | Tags        (* run-time tag dispatch (§3) *)

let strategy_name = function
  | Dicts -> "dicts"
  | Dicts_flat -> "dicts-flat"
  | Tags -> "tags"

(* Specializer options: how the [Specialise] optimizer pass is driven.
   With a profile loaded, only hot bindings (>= threshold profiled
   dispatches in their body) are cloned; without one every overloaded
   binding is a candidate. The budgets bound code growth either way. *)
type spec_options = {
  spec_profile : Profile.spec option;  (* loaded dispatch profile *)
  spec_threshold : int;                (* hotness threshold, in hits *)
  spec_max_clones : int;               (* <= 0 disables cloning *)
  spec_max_growth : float;             (* size multiple cap; <= 0 off *)
}

(* kept in sync with Tc_opt.Specialise.default_policy *)
let default_spec =
  {
    spec_profile = None;
    spec_threshold = 1;
    spec_max_clones = 2000;
    spec_max_growth = 0.;
  }

type options = {
  strategy : strategy;
  overloaded_literals : bool;  (* integer literals via fromInt (Num a => a) *)
  defaulting : bool;           (* resolve ambiguous numeric contexts *)
  include_prelude : bool;
  lint : bool;
  max_errors : int;            (* accumulating-mode error cap; <= 0 unlimited *)
  specialise : spec_options;   (* drives the Specialise optimizer pass *)
  trace : Trace.t;             (* compile-time event sink; off by default *)
  metrics : Metrics.t;         (* phase spans + counters; off by default *)
  rtrace : Rtrace.t;           (* per-request flight recorder; off by default *)
}

let default_options =
  {
    strategy = Dicts;
    overloaded_literals = true;
    defaulting = true;
    include_prelude = true;
    lint = true;
    max_errors = 100;
    specialise = default_spec;
    trace = Trace.none;
    metrics = Metrics.disabled;
    rtrace = Rtrace.disabled;
  }

(* The artifact-relevant rendering of the spec options, for compile-cache
   keys: two compiles whose signatures differ must not share an optimized
   artifact. *)
let spec_signature (o : options) : string =
  let s = o.specialise in
  Printf.sprintf "profile=%s;threshold=%d;clones=%d;growth=%g"
    (match s.spec_profile with
     | None -> "-"
     | Some sp -> Profile.spec_digest sp)
    s.spec_threshold s.spec_max_clones s.spec_max_growth

(** The checker-level options implied by the pipeline options. Under [Tags]
    the program is still checked with the nested dictionary translation
    (for safety and reported types) before the independent §3 translation
    replaces the core program. *)
let infer_options (o : options) : Infer.options =
  {
    Infer.strategy =
      (match o.strategy with
       | Dicts_flat -> Layout.Flat
       | Dicts | Tags -> Layout.Nested);
    overloaded_literals = o.overloaded_literals;
    defaulting = o.defaulting;
  }

type compiled = {
  env : Class_env.t;
  core : Core.program;
  schemes : (Ident.t * Scheme.t) list;  (* all top-level bindings, in order *)
  user_schemes : (Ident.t * Scheme.t) list;  (* excluding the prelude *)
  warnings : Diagnostic.t list;
  checker_stats : Stats.t;
  options : options;
  spec_report : Tc_opt.Specialise.report option;
      (* what the last Specialise pass did, once [optimize] ran one *)
  (* tooling hooks (REPL, :type): the final value environment and the
     fixity table of the compiled program *)
  venv : Infer.venv;
  fixities : Fixity.env;
}

(* ------------------------------------------------------------------ *)
(* Instance bodies: extract method definitions as function bindings.   *)
(* ------------------------------------------------------------------ *)

let fun_binds_of_body (decls : Ast.decl list) : (Ident.t * Ast.fun_bind) list =
  let grouped = Ast.group_decls decls in
  List.filter_map
    (fun b ->
      match b with
      | Ast.BFun fb -> Some (fb.fb_name, fb)
      | Ast.BPat ({ p = Ast.PVar m; _ }, rhs, loc) ->
          Some
            ( m,
              {
                Ast.fb_name = m;
                fb_equations = [ { eq_pats = []; eq_rhs = rhs } ];
                fb_loc = loc;
              } )
      | Ast.BPat _ -> None)
    grouped.g_binds

(** The signature an instance's method implementation must satisfy: the
    method's declared type with the class variable replaced by the instance
    head, qualified by the instance context (then any extra method
    context, §8.5). The context order fixes the dictionary parameters,
    matching {!Tc_dicts.Construct}. *)
let impl_signature (env : Class_env.t) (inst : Class_env.inst_info)
    (mi : Class_env.method_info) : Ast.sqtyp =
  let ci = Class_env.class_exn env mi.mi_class in
  (* freshen head variables to avoid capturing the method sig's variables *)
  let params' = List.map (fun p -> Ident.gensym (Ident.text p)) inst.in_params in
  (if Tc_types.Tycon.is_tuple { Tc_types.Tycon.name = inst.in_tycon;
                                arity = List.length params' }
   then ignore (Class_env.tuple_con env (List.length params')));
  let head =
    List.fold_left
      (fun acc p -> Ast.TSApp (acc, Ast.TSVar p))
      (Ast.TSCon inst.in_tycon) params'
  in
  let inst_preds =
    List.concat
      (List.mapi
         (fun i ctx ->
           List.map
             (fun c ->
               { Ast.sp_class = c;
                 sp_ty = Ast.TSVar (List.nth params' i);
                 sp_loc = inst.in_loc })
             ctx)
         (Array.to_list inst.in_context))
  in
  let subst = [ (ci.ci_var, head) ] in
  {
    Ast.sq_context = inst_preds @ mi.mi_sig.sq_context;
    sq_ty = Tc_types.Elaborate.subst_styp subst mi.mi_sig.sq_ty;
    sq_loc = inst.in_loc;
  }

(** The signature of a default method: the method's type qualified by the
    class constraint itself (the default receives the class dictionary). *)
let default_signature (env : Class_env.t) (mi : Class_env.method_info) :
    Ast.sqtyp =
  let ci = Class_env.class_exn env mi.mi_class in
  {
    Ast.sq_context =
      { Ast.sp_class = mi.mi_class;
        sp_ty = Ast.TSVar ci.ci_var;
        sp_loc = ci.ci_loc }
      :: mi.mi_sig.sq_context;
    sq_ty = mi.mi_sig.sq_ty;
    sq_loc = ci.ci_loc;
  }

(* ------------------------------------------------------------------ *)
(* Compilation.                                                        *)
(* ------------------------------------------------------------------ *)

let parse_source ~file src : Ast.program = Parser.parse_program ~file src

let top_decl_loc : Ast.top_decl -> Loc.t = function
  | Ast.TData d -> d.td_loc
  | Ast.TSyn s -> s.ts_loc
  | Ast.TClass c -> c.tc_loc
  | Ast.TInstance i -> i.ti_loc
  | Ast.TDecl (Ast.DSig (_, _, l))
  | Ast.TDecl (Ast.DFun (_, _, l))
  | Ast.TDecl (Ast.DPat (_, _, l))
  | Ast.TDecl (Ast.DFix (_, _, _, l)) -> l

(** Front end shared by both implementation strategies: parse, fixity
    resolution, static analysis, desugaring.

    Without [sink] every error raises (fail-fast). With [sink] each stage
    recovers at its natural boundary and records diagnostics instead: the
    parser resynchronizes at the next top-level declaration, fixity
    resolution and static analysis skip the offending declaration, and
    desugaring degrades to an empty program. *)
let front ?sink ?(metrics = Metrics.disabled) ?(rt = Rtrace.disabled)
    ~include_prelude ~file src :
    Class_env.t * Kernel.group list * Fixity.env =
  Inject.hit Inject.Lex;
  let toks =
    Span.wrap_rt rt metrics "lex" (fun () -> Tc_syntax.Lexer.tokenize ~file src)
  in
  let toks =
    Span.wrap_rt rt metrics "layout" (fun () -> Tc_syntax.Layout.layout toks)
  in
  let user_prog =
    Span.wrap_rt rt metrics "parse" (fun () ->
        match sink with
        | None -> Parser.parse_program_tokens toks
        | Some sink ->
            Parser.parse_program_tokens
              ~recover:(Diagnostic.Sink.report sink) toks)
  in
  Inject.hit Inject.Parse;
  let prog =
    if include_prelude then
      Span.wrap_rt rt metrics "prelude" (fun () ->
          parse_source ~file:"<prelude>" Tc_prelude.Prelude.source)
      @ user_prog
    else user_prog
  in
  let prog, fixities =
    Span.wrap_rt rt metrics "fixity" (fun () ->
        match sink with
        | None -> Fixity.resolve_program prog
        | Some sink ->
            (* per-declaration recovery: a bad operator sequence loses only
               its own declaration *)
            let fenv = Fixity.collect_program Fixity.builtin prog in
            let prog =
              List.filter_map
                (fun d ->
                  Diagnostic.guard ~sink ~stage:"fixity resolution"
                    ~loc:(top_decl_loc d)
                    ~recover:(fun () -> None)
                    (fun () -> Some (Fixity.top_decl fenv d)))
                prog
            in
            (prog, fenv))
  in
  let env =
    match sink with
    | None -> Class_env.create ()
    | Some sink -> Class_env.create ~sink ()
  in
  Inject.hit Inject.Static;
  let { Static.env; value_decls } =
    Span.wrap_rt rt metrics "static" (fun () ->
        Static.process ~env ~fail_fast:(Option.is_none sink) prog)
  in
  let groups =
    Span.wrap_rt rt metrics "desugar" (fun () ->
        match sink with
        | None -> Desugar.top_decls env value_decls
        | Some sink ->
            Diagnostic.guard ~sink ~stage:"desugaring" ~loc:Loc.none
              ~recover:(fun () -> [])
              (fun () -> Desugar.top_decls ~sink env value_decls))
  in
  (env, groups, fixities)

(** The dictionary-passing translation (both layouts). Without [sink],
    fail-fast; with [sink], each binding group is a fault-isolation
    boundary: a failed group's binders get {!Infer.error_scheme} (which
    unifies with anything and never re-reports) and checking continues
    with the remaining groups. *)
let compile_dicts ?sink ~(opts : options) ~file (src : string) : compiled =
  Stats.reset ();
  let metrics = opts.metrics in
  let rt = opts.rtrace in
  Span.wrap_rt rt metrics "compile" @@ fun () ->
  let iopts = infer_options opts in
  let env, groups, fixities =
    front ?sink ~metrics ~rt ~include_prelude:opts.include_prelude ~file src
  in
  env.Class_env.trace <- opts.trace;
  let st = Infer.create_state ~opts:iopts env in
  Infer.push_scope st;
  (* a stand-in body for bindings whose real translation failed; never
     executed because an erroneous compile yields no artifact *)
  let stub_expr name =
    Core.App
      ( Core.Var Prims.p_failure,
        Core.Lit
          (Tc_syntax.Ast.LString
             (Printf.sprintf "erroneous binding '%s'" (Ident.text name))) )
  in
  let guarded ~stage ~loc ~recover f =
    match sink with
    | None -> f ()
    | Some _ -> Infer.protect st ~stage ~loc ~recover f
  in
  let venv0 =
    List.fold_left
      (fun m (name, scheme) -> Ident.Map.add name (Infer.Poly scheme) m)
      Ident.Map.empty (Prims.schemes env)
  in
  Inject.hit Inject.Infer;
  Inject.hit Inject.Oom;
  (* user (and prelude) value bindings, in dependency order *)
  let check_group (venv, gs, ss) g =
    List.iter
      (fun (b : Kernel.bind) ->
        if Class_env.find_method env b.kb_name <> None then
          err ~loc:b.kb_loc
            "'%a' is a class method and cannot be redefined at the top \
             level"
            Ident.pp b.kb_name)
      (Kernel.binds_of_group g);
    let venv', cg = Infer.infer_group st venv g in
    let ss' =
      List.fold_left
        (fun ss (b : Kernel.bind) ->
          match Ident.Map.find_opt b.kb_name venv' with
          | Some (Infer.Poly s) ->
              (b.kb_name, s, b.kb_loc.Tc_support.Loc.file) :: ss
          | _ -> ss)
        ss (Kernel.binds_of_group g)
    in
    (venv', cg :: gs, ss')
  in
  let venv, user_groups_rev, schemes_rev =
    Span.wrap_rt rt metrics "infer" @@ fun () ->
    List.fold_left
      (fun ((venv, gs, ss) as acc) g ->
        let binds = Kernel.binds_of_group g in
        let loc =
          match binds with b :: _ -> b.Kernel.kb_loc | [] -> Loc.none
        in
        guarded ~stage:"type inference" ~loc
          ~recover:(fun () ->
            let venv' =
              List.fold_left
                (fun m (b : Kernel.bind) ->
                  Ident.Map.add b.kb_name
                    (Infer.Poly (Infer.error_scheme ()))
                    m)
                venv binds
            in
            let cg =
              Core.Rec
                (List.map
                   (fun (b : Kernel.bind) ->
                     { Core.b_name = b.kb_name; b_expr = stub_expr b.kb_name })
                   binds)
            in
            (venv', cg :: gs, ss))
          (fun () -> check_group acc g))
      (venv0, [], []) groups
  in
  let default_binds, missing_default_binds, impl_binds =
    Span.wrap_rt rt metrics "methods" @@ fun () ->
  (* default methods *)
  let default_binds =
    List.concat_map
      (fun (ci : Class_env.class_info) ->
        List.map
          (fun (m, (fb : Ast.fun_bind)) ->
            let name = Class_env.default_name ~cls:ci.ci_name ~meth:m in
            guarded ~stage:"default method checking" ~loc:fb.fb_loc
              ~recover:(fun () ->
                { Core.b_name = name; b_expr = stub_expr name })
              (fun () ->
                let mi = Option.get (Class_env.find_method env m) in
                let q = default_signature env mi in
                let expr = Desugar.fun_bind_expr env fb in
                let b, _ =
                  Infer.check_signature_binding st venv ~name ~q ~loc:fb.fb_loc
                    expr
                in
                b))
          ci.ci_defaults)
      (Class_env.all_classes env)
  in
  (* methods without a default, omitted by some instance: a stub that
     fails at run time when actually called *)
  let missing_default_binds =
    List.concat_map
      (fun (ci : Class_env.class_info) ->
        List.filter_map
          (fun m ->
            if List.mem_assoc m ci.ci_defaults then None
            else if
              List.exists
                (fun (inst : Class_env.inst_info) ->
                  Ident.equal inst.in_class ci.ci_name
                  && List.assoc_opt m inst.in_impls = Some Class_env.Default_impl)
                (Class_env.all_instances env)
            then
              Some
                {
                  Core.b_name = Class_env.default_name ~cls:ci.ci_name ~meth:m;
                  b_expr =
                    Core.Lam
                      ( [ Ident.gensym "d$unused" ],
                        Core.App
                          ( Core.Var Prims.p_failure,
                            Core.Lit
                              (Tc_syntax.Ast.LString
                                 (Printf.sprintf "no definition for method %s"
                                    (Ident.text m))) ) );
                }
            else None)
          ci.ci_methods)
      (Class_env.all_classes env)
  in
  (* instance method implementations *)
  let impl_binds =
    List.concat_map
      (fun (inst : Class_env.inst_info) ->
        let bodies = fun_binds_of_body inst.in_body in
        List.filter_map
          (fun (m, impl) ->
            match impl with
            | Class_env.Default_impl -> None
            | Class_env.User_impl impl_name ->
                Some
                  (guarded ~stage:"instance method checking" ~loc:inst.in_loc
                     ~recover:(fun () ->
                       { Core.b_name = impl_name;
                         b_expr = stub_expr impl_name })
                     (fun () ->
                       let fb = List.assoc m bodies in
                       let mi = Option.get (Class_env.find_method env m) in
                       let q = impl_signature env inst mi in
                       let expr = Desugar.fun_bind_expr env fb in
                       let b, _ =
                         Infer.check_signature_binding st venv ~name:impl_name
                           ~q ~loc:fb.fb_loc expr
                       in
                       b)))
          inst.in_impls)
      (Class_env.all_instances env)
  in
  (default_binds, missing_default_binds, impl_binds)
  in
  (* dictionary bindings (mechanical, §4) *)
  Inject.hit Inject.Translate;
  let dict_binds =
    Span.wrap_rt rt metrics "dicts" (fun () ->
        guarded ~stage:"dictionary construction" ~loc:Loc.none
          ~recover:(fun () -> [])
          (fun () -> Construct.all_dict_bindings env iopts.strategy))
  in
  Span.wrap_rt rt metrics "resolve" (fun () ->
      match sink with
      | None -> Infer.final_resolve st
      | Some _ -> Infer.final_resolve ~isolate:true st);
  let failed =
    match sink with
    | Some sink -> Diagnostic.Sink.has_errors sink
    | None -> false
  in
  let program : Core.program =
    if failed then
      (* diagnostics were recorded; the caller discards the artifact, so
         skip the mechanical back half rather than run it over stubs *)
      { p_binds = []; p_main = None }
    else
      Span.wrap_rt rt metrics "normalize" @@ fun () ->
      guarded ~stage:"core normalization" ~loc:Loc.none
        ~recover:(fun () -> { Core.p_binds = []; p_main = None })
        (fun () ->
          let main_id = Ident.intern "main" in
          let has_main =
            List.exists
              (fun g ->
                List.exists
                  (fun (b : Core.bind) -> Ident.equal b.b_name main_id)
                  (Core.binds_of_group g))
              (List.rev user_groups_rev)
          in
          let program : Core.program =
            {
              p_binds =
                List.rev user_groups_rev
                @ List.map
                    (fun b -> Core.Nonrec b)
                    (default_binds @ missing_default_binds @ impl_binds
                   @ dict_binds);
              p_main = (if has_main then Some main_id else None);
            }
          in
          let program = Core.squash_program program in
          let program = Scc.regroup program in
          if opts.lint then Lint.check_program ~primitives:Prims.names program;
          program)
  in
  let all_schemes = List.rev_map (fun (n, s, _) -> (n, s)) schemes_rev in
  let user_schemes =
    List.rev schemes_rev
    |> List.filter_map (fun (n, s, f) -> if f = "<prelude>" then None else Some (n, s))
  in
  {
    env;
    core = program;
    schemes = all_schemes;
    user_schemes;
    warnings = Diagnostic.Sink.warnings env.sink;
    checker_stats = Stats.snapshot ();
    options = opts;
    spec_report = None;
    venv;
    fixities;
  }

let compile ?(opts = default_options) ?(file = "<input>") (src : string) :
    compiled =
  match opts.strategy with
  | Dicts | Dicts_flat -> compile_dicts ~opts ~file src
  | Tags ->
      (* 1. ordinary type checking, for safety and reported types. (Checking
         keeps overloaded literals; the tag translation then treats integer
         literals as monomorphic Int, as ML does — code that relies on
         return-type overloading of literals misbehaves under tags, which is
         part of the point of §3.) *)
      let checked = compile_dicts ~opts ~file src in
      (* 2. independent tag-dispatch translation of the same source *)
      Span.wrap_rt opts.rtrace opts.metrics "tags" @@ fun () ->
      let env, groups, _ =
        front ~metrics:opts.metrics ~rt:opts.rtrace
          ~include_prelude:opts.include_prelude ~file src
      in
      let core = Tc_tagdispatch.Tagdispatch.translate_program env groups in
      if opts.lint then Lint.check_program ~primitives:Prims.names core;
      { checked with env; core }

(* ------------------------------------------------------------------ *)
(* Accumulating compilation.                                           *)
(* ------------------------------------------------------------------ *)

type checked = {
  diagnostics : Diagnostic.t list;  (* in issue order *)
  artifact : compiled option;       (* [Some] iff no errors were recorded *)
}

(** Compile, collecting every diagnostic instead of raising on the first
    error. Recovery boundaries: top-level declaration (parser, fixity,
    static analysis), binding group / signature binding (inference),
    placeholder (final resolution), plus an ICE guard around every stage;
    the error cap is [opts.max_errors]. Never raises: a fatal error
    outside any boundary (lexer, layout) and any unexpected exception end
    up in [diagnostics] too. *)
let compile_collect ?(opts = default_options) ?(file = "<input>")
    (src : string) : checked =
  let sink = Diagnostic.Sink.create ~max_errors:opts.max_errors () in
  let safe_report d =
    try Diagnostic.Sink.report sink d
    with Diagnostic.Sink.Limit_reached -> ()
  in
  let artifact =
    match
      match opts.strategy with
      | Dicts | Dicts_flat -> compile_dicts ~sink ~opts ~file src
      | Tags ->
          let checked = compile_dicts ~sink ~opts ~file src in
          if Diagnostic.Sink.has_errors sink then checked
          else
            Diagnostic.guard ~sink ~stage:"tag translation" ~loc:Loc.none
              ~recover:(fun () -> checked)
              (fun () ->
                let env, groups, _ =
                  front ~metrics:opts.metrics ~rt:opts.rtrace
                    ~include_prelude:opts.include_prelude ~file src
                in
                let core =
                  Tc_tagdispatch.Tagdispatch.translate_program env groups
                in
                if opts.lint then
                  Lint.check_program ~primitives:Prims.names core;
                { checked with env; core })
    with
    | c -> if Diagnostic.Sink.has_errors sink then None else Some c
    | exception Diagnostic.Sink.Limit_reached ->
        safe_report
          (Diagnostic.make ~severity:Diagnostic.Warning ~loc:Loc.none
             (Printf.sprintf
                "too many errors (more than %d); giving up on this file"
                opts.max_errors));
        None
    | exception Diagnostic.Error d ->
        (* fatal error outside any recovery boundary (lexer, layout) *)
        safe_report d;
        None
    | exception Out_of_memory -> raise Out_of_memory
    | exception e ->
        safe_report (Diagnostic.of_exn ~stage:"compilation" ~loc:Loc.none e);
        None
  in
  { diagnostics = Diagnostic.Sink.diagnostics sink; artifact }

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)
(* ------------------------------------------------------------------ *)

type backend = [ `Tree | `Vm ]

type result = {
  rendered : string;
  counters : Counters.t;
  value : Eval.value option;            (* tree backend only *)
  profile : Profile.report option;      (* when requested *)
}

(** Lower a compiled program to bytecode. The [mode] is baked in at
    compile time: lazy code delays arguments and let bindings, strict code
    evaluates them inline (dictionary fields stay delayed in both). *)
let bytecode ?(mode = `Lazy) (c : compiled) : Tc_vm.Bytecode.program =
  let cons = Eval.con_table_of_env c.env in
  Tc_vm.Compile.program ~mode ~cons c.core

(** Backend-agnostic execution: run on the tree evaluator or compile to
    bytecode and run on the stack VM. Both report the same rendered value
    and the same dictionary counters, and exhaust the same [budget]
    limits with the same classified {!Tc_resilience.Budget.Exhausted}
    (a native [Stack_overflow] on the tree backend is classified as
    [Frames] exhaustion too). With [~profile:true], every [Sel]/[MkDict]
    executed is also charged to its compile-time dispatch site and the
    result carries the ranked report. *)
let exec ?(backend = `Tree) ?(mode = `Lazy) ?(budget = Budget.unlimited)
    ?entry ?(profile = false) (c : compiled) : result =
  let metrics = c.options.metrics in
  let rt = c.options.rtrace in
  Span.wrap_rt rt metrics "exec" @@ fun () ->
  let cons = Eval.con_table_of_env c.env in
  let prt = if profile then Some (Profile.create_rt ()) else None in
  let finish ~meter ~rendered ~counters ~value =
    Budget.check_output meter (String.length rendered);
    let report =
      Option.map
        (fun prt -> Profile.make ~sites:(Profile.site_table c.core) prt)
        prt
    in
    { rendered; counters; value; profile = report }
  in
  match backend with
  | `Tree -> (
      let st = Eval.create_state ~mode ~budget ?profile:prt cons in
      try
        let v = Span.wrap_rt rt metrics "eval" (fun () -> Eval.run ?entry st c.core) in
        Inject.hit Inject.Render;
        let rendered = Span.wrap_rt rt metrics "render" (fun () -> Eval.render st v) in
        finish ~meter:st.Eval.budget ~rendered ~counters:st.Eval.counters
          ~value:(Some v)
      with Stack_overflow ->
        (* the native stack is the tree backend's frame resource; report
           its exhaustion like any configured frame bound *)
        Budget.exhausted Budget.Frames ~spent:0 ~limit:0)
  | `Vm ->
      let prog =
        Span.wrap_rt rt metrics "lower" (fun () ->
            Tc_vm.Compile.program ~mode ~cons c.core)
      in
      let st = Tc_vm.Vm.create_state ~budget ?profile:prt cons in
      let v = Span.wrap_rt rt metrics "eval" (fun () -> Tc_vm.Vm.run ?entry st prog) in
      Inject.hit Inject.Render;
      let rendered = Span.wrap_rt rt metrics "render" (fun () -> Tc_vm.Vm.render st v) in
      finish ~meter:(Tc_vm.Vm.meter st) ~rendered
        ~counters:(Tc_vm.Vm.counters st) ~value:None

(** Type check only; returns the inferred qualified types of the user's
    top-level bindings, rendered. *)
let check_types ?opts ?file src : (string * string) list =
  let c = compile ?opts ?file src in
  List.map (fun (n, s) -> (Ident.text n, Scheme.to_string s)) c.schemes

(** The qualified type of a standalone expression against a compiled
    program's environment (the REPL's [:type]). The expression is checked
    but not translated, so its context is reported as attached to its type
    variables rather than generalized. *)
let expression_type (c : compiled) (src : string) : string =
  let e = Parser.parse_expression ~file:"<interactive>" src in
  let e = Fixity.expr c.fixities e in
  let k = Tc_desugar.Desugar.expr c.env e in
  let st = Infer.create_state ~opts:(infer_options c.options) c.env in
  Infer.push_scope st;
  let ty, _core = Infer.infer_expr st c.venv k in
  ignore (Infer.pop_scope st);
  Fmt.str "%a" Tc_types.Ty.pp_qualified ty

(** Apply an optimizer pipeline to a compiled program, reporting a
    per-pass [Opt_pass] event (program size and static dictionary-operation
    deltas) to the compile's trace sink. The [Specialise] pass runs under
    the policy in [options.specialise] — with a loaded profile remapped
    onto the program's site table, this is the profile-guided half of the
    profile → optimize loop — and its typed report lands in
    [spec_report], in an [opt/spec/*] metrics family, and in a
    [Spec_report] trace event. *)
let optimize (passes : Tc_opt.Opt.pass list) (c : compiled) : compiled =
  let tr = c.options.trace in
  let metrics = c.options.metrics in
  let rt = c.options.rtrace in
  Span.wrap_rt rt metrics "optimize" @@ fun () ->
  let spec_report = ref c.spec_report in
  (* the policy is rebuilt against the current core: profiled counts are
     remapped (descriptor-first, id fallback) onto the sites that survived
     the passes already applied *)
  let spec_policy core : Tc_opt.Specialise.policy =
    let s = c.options.specialise in
    {
      Tc_opt.Specialise.hot_counts =
        Option.map
          (fun sp -> Profile.counts_for sp (Profile.site_table core))
          s.spec_profile;
      hot_threshold = s.spec_threshold;
      max_clones = s.spec_max_clones;
      max_growth = s.spec_max_growth;
    }
  in
  let record_spec (r : Tc_opt.Specialise.report) =
    spec_report := Some r;
    let add name v = Metrics.add (Metrics.counter metrics ("opt/spec/" ^ name)) v in
    add "clones" r.Tc_opt.Specialise.sr_clones;
    add "call_sites" r.Tc_opt.Specialise.sr_call_sites;
    add "hot_binds" r.Tc_opt.Specialise.sr_hot_binds;
    add "cold_binds" r.Tc_opt.Specialise.sr_cold_binds;
    add "budget_skips" r.Tc_opt.Specialise.sr_budget_skips;
    add "sels_removed"
      (max 0
         (r.Tc_opt.Specialise.sr_sels_before
          - r.Tc_opt.Specialise.sr_sels_after));
    add "dicts_removed"
      (max 0
         (r.Tc_opt.Specialise.sr_dicts_before
          - r.Tc_opt.Specialise.sr_dicts_after));
    Trace.emit tr (fun () ->
        Trace.Spec_report
          {
            clones = r.Tc_opt.Specialise.sr_clones;
            call_sites = r.Tc_opt.Specialise.sr_call_sites;
            hot_binds = r.Tc_opt.Specialise.sr_hot_binds;
            cold_binds = r.Tc_opt.Specialise.sr_cold_binds;
            budget_skips = r.Tc_opt.Specialise.sr_budget_skips;
            size_before = r.Tc_opt.Specialise.sr_size_before;
            size_after = r.Tc_opt.Specialise.sr_size_after;
            profile_guided = r.Tc_opt.Specialise.sr_profile_guided;
          })
  in
  let run_pass pass core =
    Span.wrap_rt rt metrics (Tc_opt.Opt.pass_name pass) (fun () ->
        match (pass : Tc_opt.Opt.pass) with
        | Tc_opt.Opt.Specialise ->
            let core', rep =
              Tc_opt.Opt.run_pass_report ~spec:(spec_policy core) pass core
            in
            Option.iter record_spec rep;
            core'
        | _ -> Tc_opt.Opt.run_pass pass core)
  in
  let core =
    List.fold_left
      (fun core pass ->
        Inject.hit ~detail:(Tc_opt.Opt.pass_name pass) Inject.Optimize;
        if Trace.is_on tr then begin
          let size_before = Profile.program_size core in
          let sels_before, dicts_before = Profile.static_dict_ops core in
          let core' = run_pass pass core in
          Trace.emit tr (fun () ->
              let size_after = Profile.program_size core' in
              let sels_after, dicts_after = Profile.static_dict_ops core' in
              Trace.Opt_pass
                { pass = Tc_opt.Opt.pass_name pass; size_before; size_after;
                  sels_before; sels_after; dicts_before; dicts_after });
          core'
        end
        else run_pass pass core)
      c.core passes
  in
  if c.options.lint then Lint.check_program ~primitives:Prims.names core;
  { c with core; spec_report = !spec_report }
