(** [mhc serve] — a crash-proof, long-running request loop.

    The server reads newline-delimited JSON requests from a source and
    writes exactly one newline-delimited JSON response per request, in
    order. Every request is handled in complete isolation: a fresh
    compile (fresh diagnostic sinks, fresh evaluator state), its own
    {!Tc_resilience.Budget.t} (the per-request fields override the
    server default), and a containment boundary that classifies any
    escape — compile errors, runtime errors, resource exhaustion
    (including [Out_of_memory]), and ICEs — into a structured [error]
    field. The process never dies on a request; malformed JSON gets a
    [bad-request] response rather than killing the loop.

    Transient faults (the {!Tc_resilience.Inject.Serve_transient} class)
    are retried with exponential backoff before being reported.

    Telemetry: every request's latency is observed into a
    {!Tc_obs.Metrics} registry — a histogram per op
    ([serve/latency/<op>]), a histogram per failure class
    ([serve/failures/<class>]) and the [serve/requests] counter, all
    bumped together after the response is built, so in any snapshot the
    per-op latency counts sum exactly to the request counter. Requests
    compile with the same registry, so pipeline phase spans accumulate
    across requests. The [metrics] op returns the snapshot; with
    [snapshot_every] > 0 the loop also emits a spontaneous
    [{"event": "metrics-snapshot", ...}] line every N requests.

    Probes: the [health] op answers liveness (status + uptime) whenever
    the loop is handling requests at all; the [ready] op answers whether
    new work should be routed here ([ready:false] during drain or pool
    lame-duck — still [ok:true], because not being ready is a reported
    state, not a failure).

    Tracing: with a live [config.rtrace] recorder, each request is
    minted a trace ID at ingress (or inherits the one the pool minted),
    every response carries it as a [trace] field, and — for sampled
    requests — every pipeline phase span plus a [request/<op>] root
    event is appended to the flight recorder under that ID. The [trace]
    op dumps the recorder's current window as a Chrome trace-event
    document.

    Request schema (one JSON object per line):
    {v
      {"op": "ping" | "health" | "ready" | "check" | "compile" | "run"
           | "stats" | "metrics" | "trace",
       "id": <any>,            -- echoed back verbatim (optional)
       "src": "...",           -- program text (check/compile/run)
       "strategy": "dict" | "dict-flat" | "tags",
       "backend": "tree" | "vm",          -- run only
       "mode": "lazy" | "strict",         -- run only
       "opt": "none" | "simplify" | ... | "all",  -- run only
       "stable": true,                    -- metrics only: redact detail
       "deadline_ms": N,       -- shed if older than this when handled
       "fuel": N, "frames": N, "timeout_ms": N,
       "allocations": N, "output_bytes": N}  -- budget overrides
    v}

    Response schema: [{"id", "op", "ok", ...}] with
    [value]/[counters] on a successful run, [diagnostics] plus
    error/warning/ice tallies for check/compile, and
    [error: {"class", "message"}] on failure, where [class] is one of
    ["bad-request"], ["compile"], ["runtime"], ["resource"],
    ["transient"], ["ice"], ["shed"] (rejected unprocessed under
    overload: aged out in the worker-pool queue past its deadline, or
    refused at admission after the queue stayed full past the grace
    window) or ["worker-crash"] (a synthetic response posted by the
    pool supervisor for the request a dying worker held). *)

module Budget = Tc_resilience.Budget
module Json = Tc_obs.Json

(** The seams where external layers plug into the request loop without a
    dependency cycle. All three default to [None] (plain pipeline
    calls). *)
type hooks = {
  compile :
    (opts:Pipeline.options ->
     passes:Tc_opt.Opt.pass list ->
     src:string ->
     Pipeline.compiled)
    option;
      (** replaces [Pipeline.compile] + [Pipeline.optimize] for the [run]
          op — where {!Tc_scale}'s compile cache plugs in. Must preserve
          per-request semantics: raise what [compile] would raise. *)
  check : (opts:Pipeline.options -> src:string -> Pipeline.checked) option;
      (** likewise replaces [Pipeline.compile_collect] for [check] and
          [compile] ops *)
  specialise : (Pipeline.compiled -> Pipeline.compiled) option;
      (** post-processes every [run] artifact {e after} the compile seam
          — the CLI installs a profile-guided [Pipeline.optimize] here,
          so specialization composes with a compile cache in front *)
}

(** All three seams empty. *)
val no_hooks : hooks

type config = {
  default_budget : Budget.t;
      (** applied to every request unless overridden per request *)
  retries : int;       (** transient-fault retries per request *)
  backoff_ms : float;  (** initial retry backoff; doubles per retry *)
  sleep : float -> unit;
      (** backoff implementation, in seconds (injectable for tests) *)
  clock : unit -> float;
      (** time source, in seconds (injectable for deterministic latency
          and uptime in tests); the monotonic [Tc_support.Mono.now_s] by
          default, so latencies survive system-clock steps *)
  snapshot_every : int;
      (** emit a spontaneous metrics-snapshot line every N requests;
          [0] (default) disables *)
  base_opts : Pipeline.options;
      (** compile options; the request's [strategy] field overrides the
          strategy, and the server's metrics registry overrides [metrics] *)
  max_line_bytes : int;
      (** request lines longer than this answer a [bad-request] (op
          ["oversized"]) without being parsed; [0] disables the cap *)
  default_deadline_ms : int;
      (** default request deadline: a request older than this (by the
          queue age the pool passes to {!handle_line}) is answered
          [shed] without compiling. Per-request [deadline_ms] overrides;
          [0] (default) disables shedding *)
  extra_metrics : (unit -> Tc_obs.Metrics.t) option;
      (** a view of scale-layer instruments (pool restarts, queue depth,
          persistent-cache counters) merged into the [stats]/[metrics]
          ops' reported registry. The view is called per request and
          must return a registry safe to read on this domain; it must
          not contain [serve/*] instruments or the snapshot's
          requests-vs-latency invariant breaks *)
  ready : unit -> bool;
      (** the [ready] op's verdict — whether new work should be routed
          to this server. The network front end wires this to "not
          draining and not lame-duck"; [fun () -> true] by default *)
  rtrace : Tc_obs.Rtrace.t;
      (** the per-request flight recorder; {!Tc_obs.Rtrace.disabled}
          (off, allocation-free) by default. The same recorder must be
          shared by every worker of a pool so one dump merges all
          domains' rings *)
  hooks : hooks;  (** external seams; {!no_hooks} by default *)
}

(** Ten-second deadline, 3 retries from 10ms, [Unix.sleepf],
    [Tc_support.Mono.now_s], no periodic snapshots, 1 MiB line cap, no
    request deadline, no extra metrics, always ready, {!no_hooks}. *)
val default_config : config

(** Cumulative server statistics, also exposed as the [stats] op. *)
type stats = {
  mutable requests : int;   (** requests read (including malformed) *)
  mutable responses : int;  (** responses written *)
  mutable ok : int;
  mutable failed : int;
  mutable retried : int;    (** transient retries performed *)
  mutable by_op : (string * int) list;     (** op name -> count *)
  mutable by_class : (string * int) list;  (** failure class -> count *)
}

type t

val create : ?config:config -> unit -> t
val stats : t -> stats

val metrics : t -> Tc_obs.Metrics.t
(** The server's (always live) registry: request latency histograms,
    the [serve/requests] counter, and pipeline phase spans. *)

val uptime_ms : t -> int
(** Milliseconds since [create], by the config clock. *)

val stats_json : t -> Json.t

(** Handle one request line, returning the response line (no trailing
    newline). Never raises. Lines longer than [config.max_line_bytes]
    answer a [bad-request] under op ["oversized"] without touching the
    JSON parser. [queued_us] (default 0) is how long the request waited
    before handling began — the worker pool passes its queue age — and
    drives deadline shedding: if it exceeds the request's [deadline_ms]
    (or [config.default_deadline_ms]), the response is a cheap [shed]
    failure with no compile work. [trace_id] is the ID minted for this
    request at an earlier ingress point (the pool coordinator); absent,
    one is minted here. *)
val handle_line : ?queued_us:int -> ?trace_id:int -> t -> string -> string

(** Classify an exception the way the request boundary would:
    [(class, message)]. Exposed for the pool supervisor, which labels a
    crashed worker's escaped exception. *)
val classify : exn -> string * string

(** [synthetic_failure t ~cls ~message line] manufactures the response
    for a request that never (fully) reached {!handle_line}: the pool
    supervisor answers for the request a dying worker held
    ([cls = "worker-crash"]) and the coordinator refuses admission
    under sustained overload ([cls = "shed"]). [line] is parsed only
    for [id]/[op] echo (malformed lines answer under op ["invalid"]).
    Bookkeeping mirrors {!handle_line} — stats and the
    requests/latency/failure instruments all bump, with latency 0 — so
    the per-op latency counts still sum exactly to [serve/requests] in
    any (merged) snapshot counting synthetic responses. [trace_id] as in
    {!handle_line}; sampled synthetic requests record a zero-duration
    root event. *)
val synthetic_failure :
  ?trace_id:int -> t -> cls:string -> message:string -> string -> string

val bounded_next : ?max_bytes:int -> in_channel -> unit -> string option
(** A [next] source reading newline-delimited lines from a channel with
    bounded buffering: bytes past [max_bytes] (default
    [default_config.max_line_bytes]; [0] = unlimited) are discarded as
    they stream in, retaining one extra byte so {!handle_line} still
    classifies the request as oversized. CRLF-terminated lines have the
    trailing ['\r'] stripped (except on truncated over-cap lines, where
    the retained byte is garbage, not a terminator). *)

val snapshot_event_line : after_requests:int -> Tc_obs.Metrics.t -> string
(** The spontaneous metrics-snapshot framing
    ([{"event":"metrics-snapshot", "after_requests":N, "metrics":...}])
    rendered to one line — shared with the pool coordinator so
    out-of-band snapshots look the same from every mode. *)

(** Drive the loop: read lines from [next] until it returns [None] (or
    [stop] returns [true] — checked between requests, for signal-driven
    drain), passing each response line to [emit]. Returns the final
    statistics. Never raises. [server] reuses a caller-created server
    (whose config then governs the loop) so the caller can read its
    {!metrics} after the loop drains; by default a fresh one is created
    from [config]. Spontaneous snapshot lines ([snapshot_every] > 0) go
    to [emit_oob] (default: [emit]) — a response-routing front end
    supplies a broadcast there so snapshots never consume a response's
    routing slot. *)
val run :
  ?config:config ->
  ?server:t ->
  ?stop:(unit -> bool) ->
  ?emit_oob:(string -> unit) ->
  next:(unit -> string option) ->
  emit:(string -> unit) ->
  unit ->
  stats
