module Budget = Tc_resilience.Budget
module Inject = Tc_resilience.Inject
module Json = Tc_obs.Json
module Diag = Tc_obs.Diag
module Metrics = Tc_obs.Metrics
module Rtrace = Tc_obs.Rtrace
module Mono = Tc_support.Mono
module Diagnostic = Tc_support.Diagnostic
module Eval = Tc_eval.Eval
module Counters = Tc_eval.Counters

(* The seams where external layers plug into the request loop without a
   dependency cycle: Tc_scale's compile cache replaces [compile]/[check];
   [specialise] post-processes every run's artifact (the CLI installs a
   profile-guided Pipeline.optimize here), composing with a cache in
   front of it because it runs on whatever the compile seam returned. *)
type hooks = {
  compile :
    (opts:Pipeline.options ->
     passes:Tc_opt.Opt.pass list ->
     src:string ->
     Pipeline.compiled)
    option;
  check : (opts:Pipeline.options -> src:string -> Pipeline.checked) option;
  specialise : (Pipeline.compiled -> Pipeline.compiled) option;
}

let no_hooks = { compile = None; check = None; specialise = None }

type config = {
  default_budget : Budget.t;
  retries : int;
  backoff_ms : float;
  sleep : float -> unit;
  clock : unit -> float;
  snapshot_every : int;
  base_opts : Pipeline.options;
  max_line_bytes : int;
  default_deadline_ms : int;
  extra_metrics : (unit -> Metrics.t) option;
  ready : unit -> bool;
  rtrace : Tc_obs.Rtrace.t;
  hooks : hooks;
}

let default_config =
  {
    default_budget = Budget.deadline 10_000.;
    retries = 3;
    backoff_ms = 10.;
    sleep = Unix.sleepf;
    clock = Tc_support.Mono.now_s;
    snapshot_every = 0;
    base_opts = Pipeline.default_options;
    max_line_bytes = 1 lsl 20;
    default_deadline_ms = 0;
    extra_metrics = None;
    ready = (fun () -> true);
    rtrace = Rtrace.disabled;
    hooks = no_hooks;
  }

type stats = {
  mutable requests : int;
  mutable responses : int;
  mutable ok : int;
  mutable failed : int;
  mutable retried : int;
  mutable by_op : (string * int) list;
  mutable by_class : (string * int) list;
}

type t = {
  config : config;
  stats : stats;
  totals : Counters.t;
  metrics : Metrics.t;  (* always live: latency histograms + pipeline spans *)
  started : float;      (* config.clock at creation, for uptime *)
  mutable cur_trace : int;
      (* trace ID of the request being handled, 0 between requests;
         every response built during handling is tagged with it *)
}

let create ?(config = default_config) () =
  {
    config;
    stats =
      {
        requests = 0;
        responses = 0;
        ok = 0;
        failed = 0;
        retried = 0;
        by_op = [];
        by_class = [];
      };
    totals = Counters.create ();
    metrics = Metrics.create ();
    started = config.clock ();
    cur_trace = 0;
  }

let stats t = t.stats
let metrics t = t.metrics

let bump assoc key =
  let n = match List.assoc_opt key assoc with Some n -> n | None -> 0 in
  (key, n + 1) :: List.remove_assoc key assoc

(* ---- request decoding ---- *)

(* A request that fails to decode: the response still gets exactly one
   line, classified [bad-request]. *)
exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let str_field req name =
  Option.bind (Json.member name req) Json.to_str

let int_field req name = Option.bind (Json.member name req) Json.to_int

let require_src req =
  match str_field req "src" with
  | Some s -> s
  | None -> bad "missing string field \"src\""

let strategy_of req (base : Pipeline.options) =
  match str_field req "strategy" with
  | None -> base.Pipeline.strategy
  | Some ("dict" | "dicts" | "nested") -> Pipeline.Dicts
  | Some ("dict-flat" | "flat") -> Pipeline.Dicts_flat
  | Some ("tags" | "tag") -> Pipeline.Tags
  | Some s -> bad "unknown strategy %S" s

let backend_of req =
  match str_field req "backend" with
  | None | Some "tree" -> `Tree
  | Some "vm" -> `Vm
  | Some s -> bad "unknown backend %S (expected \"tree\" or \"vm\")" s

let mode_of req =
  match str_field req "mode" with
  | None | Some "lazy" -> `Lazy
  | Some "strict" -> `Strict
  | Some s -> bad "unknown mode %S (expected \"lazy\" or \"strict\")" s

let passes_of req =
  match str_field req "opt" with
  | None -> []
  | Some s -> (
      match Tc_opt.Opt.of_string s with
      | Some passes -> passes
      | None -> bad "unknown optimization level %S" s)

(* Per-request budget: each present field overrides the server default;
   0 means unlimited (matching the CLI's [--fuel 0]). *)
let budget_of req (dft : Budget.t) : Budget.t =
  let field name current =
    match int_field req name with Some n -> n | None -> current
  in
  {
    Budget.steps = field "fuel" dft.Budget.steps;
    frames = field "frames" dft.Budget.frames;
    wall_ms =
      (match int_field req "timeout_ms" with
      | Some ms -> float_of_int ms
      | None -> dft.Budget.wall_ms);
    allocations = field "allocations" dft.Budget.allocations;
    output_bytes = field "output_bytes" dft.Budget.output_bytes;
  }

(* ---- response encoding ---- *)

let counters_json (c : Counters.t) : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Counters.pairs c))

let response t ~id ~op fields =
  let base =
    (match id with Some v -> [ ("id", v) ] | None -> [])
    @ [ ("op", Json.Str op) ]
    @ (if t.cur_trace <> 0 then [ ("trace", Json.Int t.cur_trace) ] else [])
  in
  t.stats.responses <- t.stats.responses + 1;
  Json.to_line (Json.Obj (base @ fields))

let ok_response t ~id ~op fields =
  t.stats.ok <- t.stats.ok + 1;
  response t ~id ~op (("ok", Json.Bool true) :: fields)

let fail_response t ~id ~op ~cls message =
  t.stats.failed <- t.stats.failed + 1;
  t.stats.by_class <- bump t.stats.by_class cls;
  response t ~id ~op
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("class", Json.Str cls); ("message", Json.Str message) ] );
    ]

(* Classify an escaped exception into a failure class + message. Raised
   exceptions that should kill the process anyway (none today) would be
   re-raised here; everything else is contained. *)
let classify = function
  | Bad_request m -> ("bad-request", m)
  | Diagnostic.Error d -> ("compile", Diagnostic.to_string d)
  | Eval.Runtime_error m -> ("runtime", "runtime error: " ^ m)
  | Eval.User_error m -> ("runtime", "error: " ^ m)
  | Eval.Pattern_fail m -> ("runtime", "pattern-match failure: " ^ m)
  | Budget.Exhausted { resource; spent; limit } ->
      ("resource", Budget.message resource ~spent ~limit)
  | Out_of_memory -> ("resource", "resource exhausted: memory")
  | Stack_overflow ->
      ("resource", Budget.message Budget.Frames ~spent:0 ~limit:0)
  | Inject.Transient { point; detail } ->
      let what = if detail = "" then Inject.point_name point else detail in
      ("transient", "transient fault persisted: " ^ what)
  | exn ->
      ( "ice",
        Diagnostic.to_string
          (Diagnostic.of_exn ~stage:"serve" ~loc:Tc_support.Loc.none exn) )

(* ---- operations ---- *)

(* Requests compile with the server's registry, so pipeline phase spans
   accumulate across requests and show up in the [metrics] op. *)
let opts_for t req =
  let base = t.config.base_opts in
  {
    base with
    Pipeline.strategy = strategy_of req base;
    metrics = t.metrics;
    rtrace = t.config.rtrace;
  }

let diagnostics_fields (ds : Diagnostic.t list) =
  let count sev =
    List.length
      (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) ds)
  in
  [
    ("diagnostics", Diag.json_list (Diagnostic.sort ds));
    ("errors", Json.Int (count Diagnostic.Error));
    ("warnings", Json.Int (count Diagnostic.Warning));
    ("ice", Json.Int (count Diagnostic.Bug));
  ]

(* check/compile: accumulating compile; containment inside
   [compile_collect] turns injected compile-stage faults into Bug
   diagnostics, so these ops answer [ok] with an [ice] tally rather
   than failing. *)
let do_check t ~id ~op req =
  let src = require_src req in
  let opts = opts_for t req in
  let { Pipeline.diagnostics; artifact } =
    match t.config.hooks.check with
    | Some hook -> hook ~opts ~src
    | None -> Pipeline.compile_collect ~opts ~file:"<serve>" src
  in
  let extra =
    match (op, artifact) with
    | "compile", Some c ->
        [
          ( "schemes",
            Json.Obj
              (List.map
                 (fun (n, s) ->
                   ( Tc_support.Ident.text n,
                     Json.Str (Tc_types.Scheme.to_string s) ))
                 c.Pipeline.user_schemes) );
        ]
    | _ -> []
  in
  ok_response t ~id ~op
    (diagnostics_fields diagnostics
    @ [ ("artifact", Json.Bool (artifact <> None)) ]
    @ extra)

let do_run t ~id req =
  let src = require_src req in
  let opts = opts_for t req in
  let backend = backend_of req in
  let mode = mode_of req in
  let budget = budget_of req t.config.default_budget in
  let c =
    match t.config.hooks.compile with
    | Some hook -> hook ~opts ~passes:(passes_of req) ~src
    | None ->
        let c = Pipeline.compile ~opts ~file:"<serve>" src in
        Pipeline.optimize (passes_of req) c
  in
  (* the specialise seam runs on whatever the compile seam produced, so a
     cache hit still gets (re-)specialized for this server's policy *)
  let c =
    match t.config.hooks.specialise with
    | Some hook -> hook c
    | None -> c
  in
  let r = Pipeline.exec ~backend ~mode ~budget c in
  Counters.merge t.totals r.Pipeline.counters;
  ok_response t ~id ~op:"run"
    [
      ("value", Json.Str r.Pipeline.rendered);
      ("counters", counters_json r.Pipeline.counters);
    ]

let latency_prefix = "serve/latency/"

(* All per-op latency histograms merged into one: total request count with
   overall p50/p99 microsecond latency. Merging is exact (elementwise), so
   the summary equals observing every request into a single histogram. *)
let latency_summary t : Json.t =
  let scratch = Metrics.create () in
  let acc = Metrics.histogram scratch "acc" in
  List.iter
    (fun (name, h) ->
      if String.starts_with ~prefix:latency_prefix name then
        Metrics.merge_hist ~into:acc h)
    (Metrics.histograms t.metrics);
  Json.Obj
    [
      ("count", Json.Int (Metrics.hist_count acc));
      ("p50_us", Json.Int (Metrics.quantile acc 0.5));
      ("p99_us", Json.Int (Metrics.quantile acc 0.99));
    ]

let uptime_ms t =
  int_of_float ((t.config.clock () -. t.started) *. 1000.)

let stats_json t =
  let s = t.stats in
  let tally assoc =
    Json.Obj
      (List.sort compare (List.map (fun (k, v) -> (k, Json.Int v)) assoc))
  in
  (* scale-layer counters and gauges (pool restarts, queue depth,
     persistent-cache hits, ...) folded into the stats op whenever the
     config exposes an extra registry *)
  let scale_fields =
    match t.config.extra_metrics with
    | None -> []
    | Some view ->
        let m = view () in
        [ ("scale", tally (Metrics.counters m @ Metrics.gauges m)) ]
  in
  Json.Obj
    ([
       ("requests", Json.Int s.requests);
       ("responses", Json.Int s.responses);
       ("ok", Json.Int s.ok);
       ("failed", Json.Int s.failed);
       ("retried", Json.Int s.retried);
       ("uptime_ms", Json.Int (uptime_ms t));
       ("latency", latency_summary t);
       ("by_op", tally s.by_op);
       ("by_class", tally s.by_class);
       ("counters", counters_json t.totals);
     ]
    @ scale_fields)

let do_stats t ~id = ok_response t ~id ~op:"stats" [ ("stats", stats_json t) ]

(* The registry the stats/metrics ops report: the server's own, plus a
   merged-in copy of the [extra_metrics] view when configured (the scale
   layer surfaces pool and cache counters this way). The extra registry
   must not contain serve/* instruments, or the requests-vs-latency
   invariant of the combined snapshot would break. *)
let reported_metrics t =
  match t.config.extra_metrics with
  | None -> t.metrics
  | Some view ->
      let m = Metrics.create () in
      Metrics.merge ~into:m t.metrics;
      Metrics.merge ~into:m (view ());
      m

(* metrics: the whole registry as one deterministic snapshot; [stable]
   redacts machine-dependent quantities for golden comparison. The
   snapshot is taken before this request's own bookkeeping runs, so
   within it the per-op latency counts sum exactly to [serve/requests]. *)
let do_metrics t ~id req =
  let stable =
    match Json.member "stable" req with Some (Json.Bool b) -> b | _ -> false
  in
  ok_response t ~id ~op:"metrics"
    [ ("metrics", Metrics.snapshot ~stable (reported_metrics t)) ]

(* trace: the flight recorder's current window as a Chrome trace-event
   document. With the recorder disabled this still answers ok (an empty
   window) so clients can probe whether tracing is armed via
   [recording]. *)
let do_trace t ~id =
  let rt = t.config.rtrace in
  ok_response t ~id ~op:"trace"
    [ ("recording", Json.Bool (Rtrace.is_on rt)); ("dump", Rtrace.dump rt) ]

(* ---- the request boundary ---- *)

(* Run [f] retrying transient faults with exponential backoff. Only the
   [Transient] class retries: anything else is either deterministic
   (compile/runtime/resource errors recur identically) or an ICE (retry
   would mask a bug the response should surface). *)
let with_retries t f =
  let rec go attempt backoff =
    match f () with
    | v -> v
    | exception Inject.Transient _ when attempt < t.config.retries ->
        t.stats.retried <- t.stats.retried + 1;
        t.config.sleep (backoff /. 1000.);
        go (attempt + 1) (backoff *. 2.)
  in
  go 0 t.config.backoff_ms

let handle_line ?(queued_us = 0) ?trace_id t line =
  let t0 = t.config.clock () in
  let rt = t.config.rtrace in
  (* The trace ID is minted here (stdio ingress) unless the pool already
     minted it when the line was read off the socket/queue. Every
     response built during handling carries it; span events record under
     it while it is the domain's current trace. *)
  let trace = match trace_id with Some tr -> tr | None -> Rtrace.mint rt in
  t.cur_trace <- trace;
  let traced = Rtrace.sampled rt trace in
  let ts0 = if traced then Mono.now_ns () else 0 in
  if traced then Rtrace.set_current rt trace;
  (* One bookkeeping point per request, after the response is built: the
     [serve/requests] counter and the op latency histogram are bumped
     together, so in any registry snapshot — including one taken by a
     [metrics] request mid-stream — the per-op latency counts sum exactly
     to the request counter. Failures additionally observe their latency
     under the failure class. The request's root trace event
     ([request/<op>]) is recorded here too, after the phase events it
     encloses. *)
  let finish ~op ~cls resp =
    let us = int_of_float ((t.config.clock () -. t0) *. 1e6) in
    Metrics.incr (Metrics.counter t.metrics "serve/requests");
    Metrics.observe (Metrics.histogram t.metrics (latency_prefix ^ op)) us;
    (match cls with
     | None -> ()
     | Some cls ->
         Metrics.observe
           (Metrics.histogram t.metrics ("serve/failures/" ^ cls))
           us);
    if traced then begin
      Rtrace.clear_current rt;
      Rtrace.record_as rt ~trace ~name:("request/" ^ op) ~ts_ns:ts0
        ~dur_ns:(Mono.now_ns () - ts0) ~words:0
    end;
    t.cur_trace <- 0;
    resp
  in
  t.stats.requests <- t.stats.requests + 1;
  let cap = t.config.max_line_bytes in
  if cap > 0 && String.length line > cap then begin
    (* Degenerate input: don't even hand it to the JSON parser. The
       [bounded_next] reader truncates such lines to [cap + 1] bytes, so
       this test still fires after truncation without the server ever
       buffering the full line. *)
    t.stats.by_op <- bump t.stats.by_op "oversized";
    finish ~op:"oversized" ~cls:(Some "bad-request")
      (fail_response t ~id:None ~op:"oversized" ~cls:"bad-request"
         (Printf.sprintf "request line exceeds %d bytes" cap))
  end
  else
  match Json.parse line with
  | Error m ->
      t.stats.by_op <- bump t.stats.by_op "invalid";
      finish ~op:"invalid" ~cls:(Some "bad-request")
        (fail_response t ~id:None ~op:"invalid" ~cls:"bad-request"
           ("invalid JSON: " ^ m))
  | Ok req -> (
      let id = Json.member "id" req in
      let op =
        match str_field req "op" with Some s -> s | None -> "missing"
      in
      t.stats.by_op <- bump t.stats.by_op op;
      (* Deadline-based shedding: a request that already aged past its
         deadline while queued (the pool passes [queued_us]) is rejected
         here, before any compile work — answering late is worse than
         answering [shed] promptly, and the cycles are better spent on
         requests that can still make their deadline. *)
      let deadline_ms =
        match int_field req "deadline_ms" with
        | Some ms -> ms
        | None -> t.config.default_deadline_ms
      in
      if deadline_ms > 0 && queued_us > deadline_ms * 1000 then
        finish ~op ~cls:(Some "shed")
          (fail_response t ~id ~op ~cls:"shed"
             (Printf.sprintf
                "shed: aged %dms in queue, past the %dms deadline"
                (queued_us / 1000) deadline_ms))
      else
      try
        finish ~op ~cls:None
          (with_retries t @@ fun () ->
           if !Inject.live then Inject.hit Inject.Serve_transient;
           match op with
           | "ping" -> ok_response t ~id ~op:"ping" []
           (* Liveness: the loop is handling requests at all. Always ok
              while the process answers — a monitor that can't get this
              line should restart the process. *)
           | "health" ->
               ok_response t ~id ~op:"health"
                 [
                   ("status", Json.Str "ok");
                   ("uptime_ms", Json.Int (uptime_ms t));
                 ]
           (* Readiness: whether new work should be routed here. Still
              [ok:true] — not being ready is a reported state, not a
              failure — with the verdict in the [ready] field. Flips
              false during drain and pool lame-duck. *)
           | "ready" ->
               ok_response t ~id ~op:"ready"
                 [ ("ready", Json.Bool (t.config.ready ())) ]
           | "stats" -> do_stats t ~id
           | "metrics" -> do_metrics t ~id req
           | "trace" -> do_trace t ~id
           | "check" | "compile" -> do_check t ~id ~op req
           | "run" -> do_run t ~id req
           | "missing" -> bad "missing string field \"op\""
           | other -> bad "unknown op %S" other)
      with exn ->
        let cls, message = classify exn in
        finish ~op ~cls:(Some cls) (fail_response t ~id ~op ~cls message))

(* A response manufactured on behalf of a request that never (fully)
   reached [handle_line]: the pool supervisor answers for a request
   whose worker died mid-flight ([worker-crash]) and the coordinator
   rejects requests at admission when the queue has been full past the
   grace window ([shed]). Accounting mirrors [handle_line]'s [finish]
   exactly — stats request/response/by_op/by_class bumps plus the
   requests counter, the per-op latency histogram (latency 0: the
   request did no work here) and the failure-class histogram — so the
   merged-registry invariant (per-op latency counts summing exactly to
   [serve/requests]) keeps holding when synthetic responses are
   counted. *)
let synthetic_failure ?trace_id t ~cls ~message line =
  let id, op =
    match Json.parse line with
    | Error _ -> (None, "invalid")
    | Ok req -> (
        ( Json.member "id" req,
          match str_field req "op" with Some s -> s | None -> "missing" ))
  in
  let rt = t.config.rtrace in
  let trace = match trace_id with Some tr -> tr | None -> Rtrace.mint rt in
  t.cur_trace <- trace;
  t.stats.requests <- t.stats.requests + 1;
  t.stats.by_op <- bump t.stats.by_op op;
  let resp = fail_response t ~id ~op ~cls message in
  Metrics.incr (Metrics.counter t.metrics "serve/requests");
  Metrics.observe (Metrics.histogram t.metrics (latency_prefix ^ op)) 0;
  Metrics.observe (Metrics.histogram t.metrics ("serve/failures/" ^ cls)) 0;
  (* a zero-duration root event, so shed/crashed requests still show up
     (with their op) in the dump and the slowest-N digest's input *)
  if Rtrace.sampled rt trace then
    Rtrace.record_as rt ~trace ~name:("request/" ^ op)
      ~ts_ns:(Mono.now_ns ()) ~dur_ns:0 ~words:0;
  t.cur_trace <- 0;
  resp

(* A spontaneous (not request/response) snapshot line, emitted every
   [snapshot_every] requests; distinguished by its ["event"] field. The
   shared rendering is exposed so the pool coordinator can frame its own
   out-of-band snapshots identically. *)
let snapshot_event_line ~after_requests m =
  Json.to_line
    (Json.Obj
       [
         ("event", Json.Str "metrics-snapshot");
         ("after_requests", Json.Int after_requests);
         ("metrics", Metrics.snapshot m);
       ])

let snapshot_line t =
  snapshot_event_line ~after_requests:t.stats.requests t.metrics

(* A line reader with bounded buffering: bytes past [max_bytes] are
   discarded as they stream in, keeping exactly one extra byte so
   [handle_line]'s length test still classifies the request as
   oversized. A 100 GB line therefore costs 100 GB of reading but only
   [max_bytes + 1] bytes of memory. *)
let bounded_next ?(max_bytes = default_config.max_line_bytes) ic () =
  let buf = Buffer.create 256 in
  (* Tolerate CRLF line endings (netcat on Windows, telnet, HTTP-ish
     clients poking the socket): a trailing '\r' is part of the line
     terminator, not the request. Only the final byte is stripped —
     embedded '\r' still reaches the parser and fails as bad JSON. *)
  let finish () =
    let n = Buffer.length buf in
    (* never strip from a truncated (over-cap) line: that last byte is
       retained garbage, not a terminator, and removing it would demote
       the request from oversized to merely invalid *)
    if
      n > 0
      && (max_bytes = 0 || n <= max_bytes)
      && Buffer.nth buf (n - 1) = '\r'
    then Buffer.sub buf 0 (n - 1)
    else Buffer.contents buf
  in
  let rec go seen_any =
    match In_channel.input_char ic with
    | None -> if seen_any then Some (finish ()) else None
    | Some '\n' -> Some (finish ())
    | Some c ->
        if max_bytes = 0 || Buffer.length buf <= max_bytes then
          Buffer.add_char buf c;
        go true
  in
  go false

let run ?(config = default_config) ?server ?(stop = fun () -> false)
    ?emit_oob ~next ~emit () =
  let t = match server with Some t -> t | None -> create ~config () in
  let every = t.config.snapshot_every in
  (* Spontaneous lines go out-of-band: on stdio that is the same channel
     as responses, but a front end that routes responses to their
     requesting connection (the TCP emitter) supplies its own broadcast
     here so a snapshot never consumes a response's routing slot. *)
  let emit_oob = match emit_oob with Some f -> f | None -> emit in
  let rec loop () =
    if not (stop ()) then
      match next () with
      | None -> ()
      | Some line ->
          emit (handle_line t line);
          if every > 0 && t.stats.requests mod every = 0 then
            emit_oob (snapshot_line t);
          loop ()
  in
  loop ();
  t.stats
