(** TCP front end (see the interface for the contract).

    Thread layout: one accept thread (also the drain-flag poller), one
    reader thread per connection, and the caller's thread driving
    {!Pool.run} as coordinator. Workers are the pool's domains and
    never touch a socket. Locks, in nesting order: [t.lock] (connection
    set, ingest queue, drain state) may be held while taking
    [t.reg_lock] (the registry is not domain-safe); a connection's
    [wlock] (serializing writes to its fd) nests inside neither.

    Response routing needs no map: the pool contract says [emit] calls
    mirror [next] pops one-to-one in order, so a FIFO of connection
    references pushed at [next] and popped at [emit] suffices. [next]
    runs on the pool coordinator and [emit] on the pool's emitter
    thread, so the FIFO carries its own small lock.

    Never [Unix.close] a socket that may still be written: a closed
    descriptor number is immediately reusable by [accept], so a late
    write could land on a {e different} client's connection. Teardown
    therefore uses [shutdown]; [close] happens exactly once, when the
    reader has exited {e and} no responses are owed. *)

module Serve = Typeclasses.Serve
module Pool = Tc_scale.Pool
module Metrics = Tc_obs.Metrics
module Json = Tc_obs.Json
module Inject = Tc_resilience.Inject
module Mono = Tc_support.Mono

exception Bind_error of string

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;               (* serializes writes to [fd] *)
  opened_at : float;             (* Mono.now_s at accept *)
  mutable last_activity : float; (* Mono.now_s of the last byte read *)
  mutable alive : bool;          (* false once shut down: stop writing *)
  mutable owing : int;           (* requests read, responses not yet written *)
  mutable reader_done : bool;
  mutable released : bool;       (* fd closed, gauges settled *)
}

type t = {
  listen_fd : Unix.file_descr;
  max_conns : int;
  read_timeout_ms : int;
  idle_timeout_ms : int;
  drain_timeout_ms : int;
  on_drain_deadline : unit -> unit;
  reg : Metrics.t;
  reg_lock : Mutex.t;
  lock : Mutex.t;
  ingest_nonempty : Condition.t;
  ingest_room : Condition.t;
  ingest : (conn * string) Queue.t;
  mutable ingest_cap : int;
  mutable peers : conn list;      (* live connections, for OOB broadcast *)
  mutable conns : int;
  mutable readers : int;          (* live reader threads *)
  mutable drain_flag : bool;      (* set by signal handlers; polled *)
  mutable draining : bool;        (* the acted-upon state *)
  mutable lame : bool;            (* pool entered lame-duck *)
  mutable finished : bool;        (* run returned; disarms the watchdog *)
}

(* ---- registry (always through reg_lock; t.lock -> reg_lock nesting
   is permitted, never the reverse) ---- *)

let with_lock lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let bump t name =
  with_lock t.reg_lock @@ fun () ->
  Metrics.incr (Metrics.counter t.reg ("net/" ^ name))

(* Caller holds [t.lock]; [t.conns] is current. *)
let set_conns_gauges t =
  with_lock t.reg_lock @@ fun () ->
  Metrics.set (Metrics.gauge t.reg "net/conns") t.conns;
  let peak = Metrics.gauge t.reg "net/conns_peak" in
  if t.conns > Metrics.gauge_value peak then Metrics.set peak t.conns

let observe_lifetime t ms =
  with_lock t.reg_lock @@ fun () ->
  Metrics.observe (Metrics.histogram t.reg "net/conn_lifetime_ms") ms

let metrics_view t =
  with_lock t.reg_lock @@ fun () ->
  let m = Metrics.create () in
  Metrics.merge ~into:m t.reg;
  m

(* ---- lifecycle ---- *)

let addr_of ~host ~port =
  let inet =
    try Unix.inet_addr_of_string host
    with _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with _ ->
        raise
          (Bind_error (Printf.sprintf "cannot resolve listen host %S" host)))
  in
  Unix.ADDR_INET (inet, port)

let create ?(backlog = 64) ?(max_conns = 256) ?(read_timeout_ms = 10_000)
    ?(idle_timeout_ms = 60_000) ?(drain_timeout_ms = 5_000)
    ?(on_drain_deadline = fun () -> ()) ~host ~port () =
  (* A vanished client must surface as EPIPE on its own write, never as
     a process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (match Unix.bind fd (addr_of ~host ~port) with
  | () -> ()
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      (try Unix.close fd with _ -> ());
      raise
        (Bind_error
           (Printf.sprintf
              "%s:%d is already in use (is another mhc serve running?)" host
              port))
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      raise
        (Bind_error
           (Printf.sprintf "cannot bind %s:%d: %s" host port
              (Unix.error_message e))));
  Unix.listen fd backlog;
  (* Accept never blocks: the accept thread selects first, but a
     connection can vanish between select and accept (RST), and a
     blocking accept there would stall drain polling. *)
  Unix.set_nonblock fd;
  {
    listen_fd = fd;
    max_conns;
    read_timeout_ms;
    idle_timeout_ms;
    drain_timeout_ms;
    on_drain_deadline;
    reg = Metrics.create ();
    reg_lock = Mutex.create ();
    lock = Mutex.create ();
    ingest_nonempty = Condition.create ();
    ingest_room = Condition.create ();
    ingest = Queue.create ();
    ingest_cap = 64;
    peers = [];
    conns = 0;
    readers = 0;
    drain_flag = false;
    draining = false;
    lame = false;
    finished = false;
  }

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> 0

(* Async-signal-safe: one unlocked bool store. The accept thread polls
   it every select tick and performs the actual (lock-taking) drain. *)
let drain t = t.drain_flag <- true
let draining t = t.draining || t.drain_flag

(* Close the fd exactly once, when nothing will touch it again. Caller
   holds [t.lock]. *)
let maybe_release t conn =
  if conn.reader_done && conn.owing = 0 && not conn.released then begin
    conn.released <- true;
    t.conns <- t.conns - 1;
    t.peers <- List.filter (fun c -> c != conn) t.peers;
    set_conns_gauges t;
    observe_lifetime t
      (int_of_float ((Mono.now_s () -. conn.opened_at) *. 1000.));
    try Unix.close conn.fd with _ -> ()
  end

(* Stop both directions now (reap, drop, write failure). The fd itself
   stays open until [maybe_release]. *)
let shutdown_conn conn =
  conn.alive <- false;
  try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ()

(* SO_SNDTIMEO bounds each individual [Unix.write], but a client that
   drains a byte every few seconds keeps every write making partial
   progress, so the per-write timeout alone never fires — a write-side
   slowloris wedging the emitter thread (and with it every other
   connection's responses). Bound the whole response too. *)
let write_deadline_s = 5.0

let write_all conn s =
  with_lock conn.wlock @@ fun () ->
  let deadline = Mono.now_s () +. write_deadline_s in
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    if Mono.now_s () > deadline then
      raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", ""));
    off := !off + Unix.write conn.fd b !off (len - !off)
  done

(* ---- per-connection reader ---- *)

exception Conn_dropped  (* injected Conn_drop *)
exception Conn_stalled  (* injected Slow_read: jump to the reap path *)

let reader t ~max_bytes conn =
  let chunk = Bytes.create 4096 in
  let line = Buffer.create 256 in
  (* Same cap semantics as [Serve.bounded_next]: keep at most
     [max_bytes + 1] bytes so the oversized classification still fires;
     strip a terminating CR only off untruncated lines. *)
  let finish_line () =
    let n = Buffer.length line in
    let s =
      if
        n > 0
        && (max_bytes = 0 || n <= max_bytes)
        && Buffer.nth line (n - 1) = '\r'
      then Buffer.sub line 0 (n - 1)
      else Buffer.contents line
    in
    Buffer.clear line;
    s
  in
  let enqueue l =
    Mutex.lock t.lock;
    (* Backpressure: a firehose connection blocks here (its socket then
       fills and the client blocks), bounding server-side buffering.
       Drain lifts the bound so exiting readers can never wedge. *)
    while Queue.length t.ingest >= t.ingest_cap && not t.draining do
      Condition.wait t.ingest_room t.lock
    done;
    conn.owing <- conn.owing + 1;
    Queue.push (conn, l) t.ingest;
    Condition.signal t.ingest_nonempty;
    Mutex.unlock t.lock
  in
  let scan n =
    for i = 0 to n - 1 do
      match Bytes.get chunk i with
      | '\n' -> enqueue (finish_line ())
      | c ->
          if max_bytes = 0 || Buffer.length line <= max_bytes then
            Buffer.add_char line c
    done
  in
  let outcome =
    try
      let rec loop () =
        if t.draining || t.drain_flag || not conn.alive then `Drained
        else begin
          let age_ms = (Mono.now_s () -. conn.last_activity) *. 1000. in
          (* mid-line, the (tight) read deadline applies — a slowloris
             trickles bytes forever; between requests, the (loose) idle
             deadline — parked keep-alive connections are fine for a
             while, not forever *)
          let limit =
            if Buffer.length line > 0 then t.read_timeout_ms
            else t.idle_timeout_ms
          in
          if limit > 0 && age_ms > float_of_int limit then `Deadline
          else
            match Unix.select [ conn.fd ] [] [] 0.1 with
            | [], _, _ -> loop ()
            | _ -> (
                match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
                | 0 -> `Eof
                | n ->
                    conn.last_activity <- Mono.now_s ();
                    if !Inject.live then begin
                      (try Inject.hit ~detail:"net conn" Inject.Conn_drop
                       with Inject.Fault _ -> raise Conn_dropped);
                      try Inject.hit ~detail:"net conn" Inject.Slow_read
                      with Inject.Fault _ -> raise Conn_stalled
                    end;
                    scan n;
                    loop ())
        end
      in
      loop ()
    with
    | Conn_dropped -> `Dropped
    | Conn_stalled -> `Deadline
    | Unix.Unix_error
        ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.ENOTCONN
          | Unix.EINTR ),
          _,
          _ ) ->
        `Eof
    | _ -> `Eof
  in
  (match outcome with
  | `Deadline ->
      bump t "reaped";
      shutdown_conn conn
  | `Dropped ->
      bump t "dropped";
      shutdown_conn conn
  | `Eof | `Drained ->
      (* normal teardown: stop reading, but responses already owed are
         still written before the fd closes *)
      ());
  Mutex.lock t.lock;
  conn.reader_done <- true;
  t.readers <- t.readers - 1;
  maybe_release t conn;
  (* the coordinator may be waiting for "no readers left" at drain *)
  Condition.broadcast t.ingest_nonempty;
  Mutex.unlock t.lock

(* ---- accept loop (and drain poller) ---- *)

let overloaded_line t =
  Json.to_line
    (Json.Obj
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("class", Json.Str "overloaded");
               ( "message",
                 Json.Str
                   (Printf.sprintf
                      "connection limit %d reached; retry later" t.max_conns)
               );
             ] );
       ])

let do_drain t =
  Mutex.lock t.lock;
  if t.draining then Mutex.unlock t.lock
  else begin
    t.draining <- true;
    Condition.broadcast t.ingest_nonempty;
    Condition.broadcast t.ingest_room;
    Mutex.unlock t.lock;
    (* Drain watchdog: a bounded exit is part of the contract — if the
       in-flight tail outlives the timeout (a wedged compile, a worker
       crash-loop), the deadline callback takes over (the CLI emits its
       final snapshot and exits 0 there). *)
    ignore
      (Thread.create
         (fun () ->
           Thread.delay (float_of_int t.drain_timeout_ms /. 1000.);
           if not t.finished then t.on_drain_deadline ())
         ())
  end

let handle_accept t ~max_bytes fd =
  (* A non-reading client must not wedge the coordinator mid-[emit]:
     bound blocking writes, then treat the timeout as a vanished peer. *)
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with _ -> ());
  Mutex.lock t.lock;
  if t.conns >= t.max_conns || t.draining then begin
    Mutex.unlock t.lock;
    bump t "rejected";
    (try
       let s = overloaded_line t ^ "\n" in
       ignore (Unix.write_substring fd s 0 (String.length s))
     with _ -> ());
    try Unix.close fd with _ -> ()
  end
  else begin
    let now = Mono.now_s () in
    let conn =
      {
        fd;
        wlock = Mutex.create ();
        opened_at = now;
        last_activity = now;
        alive = true;
        owing = 0;
        reader_done = false;
        released = false;
      }
    in
    t.conns <- t.conns + 1;
    t.readers <- t.readers + 1;
    t.peers <- conn :: t.peers;
    set_conns_gauges t;
    Mutex.unlock t.lock;
    bump t "accepted";
    ignore (Thread.create (reader t ~max_bytes) conn)
  end

let accept_loop t ~max_bytes () =
  let rec loop () =
    if t.drain_flag && not t.draining then do_drain t;
    if t.draining then (try Unix.close t.listen_fd with _ -> ())
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match
            if !Inject.live then
              Inject.hit ~detail:"accept" Inject.Accept_fail;
            Unix.accept t.listen_fd
          with
          | fd, _ -> handle_accept t ~max_bytes fd
          | exception Inject.Fault _ ->
              bump t "accept_fails";
              Thread.delay 0.01
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ()));
      loop ()
    end
  in
  loop ()

(* ---- the pool bridge ---- *)

let run t ?(workers = 1) ?(queue_depth = 64) ?max_restarts
    ?restart_backoff_ms ?shed_grace_ms ?(config = Serve.default_config) () =
  t.ingest_cap <- max 16 queue_depth;
  let max_bytes = config.Serve.max_line_bytes in
  (* Compose, don't replace, the caller's probe and metrics view. *)
  let caller_view = config.Serve.extra_metrics in
  let net_view () =
    let m = metrics_view t in
    (match caller_view with
    | None -> ()
    | Some view -> Metrics.merge ~into:m (view ()));
    m
  in
  let caller_ready = config.Serve.ready in
  let config =
    {
      config with
      Serve.extra_metrics = Some net_view;
      (* unsynchronized cross-domain bool reads: stale by at most a
         beat, never torn — fine for a probe *)
      ready =
        (fun () ->
          caller_ready () && (not (draining t)) && not t.lame);
    }
  in
  let accept_thr = Thread.create (accept_loop t ~max_bytes) () in
  (* Response routing (see the header comment): pushed by the pool
     coordinator at [next], popped by the pool's emitter thread at
     [emit] — one-to-one in order, but from two threads, hence the
     lock. *)
  let pending : conn Queue.t = Queue.create () in
  let pending_lock = Mutex.create () in
  let next () =
    Mutex.lock t.lock;
    let rec wait () =
      if not (Queue.is_empty t.ingest) then begin
        let conn, line = Queue.pop t.ingest in
        Condition.signal t.ingest_room;
        Mutex.unlock t.lock;
        with_lock pending_lock (fun () -> Queue.push conn pending);
        Some line
      end
      else if t.draining && t.readers = 0 then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.ingest_nonempty t.lock;
        wait ()
      end
    in
    wait ()
  in
  let emit resp =
    let conn = with_lock pending_lock (fun () -> Queue.pop pending) in
    (if conn.alive then
       try write_all conn (resp ^ "\n")
       with
       | Unix.Unix_error
           ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
             | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT ),
             _,
             _ )
       | Sys_error _
       ->
         (* this client is gone (or too slow to keep): its remaining
            responses drop, its neighbors and the pool's accounting
            don't notice *)
         bump t "write_drops";
         shutdown_conn conn);
    Mutex.lock t.lock;
    conn.owing <- conn.owing - 1;
    maybe_release t conn;
    Mutex.unlock t.lock
  in
  (* Out-of-band lines (spontaneous metrics snapshots) never pop the
     routing FIFO — they broadcast to every live connection instead,
     under the same owing/release discipline as [emit] so a connection's
     fd cannot be closed (and its descriptor number reused by a new
     accept) while a broadcast write to it is still in flight. Both run
     on the pool's emitter thread, so responses and broadcasts never
     interleave mid-line. *)
  let emit_oob line =
    let targets =
      with_lock t.lock (fun () ->
          let live =
            List.filter (fun c -> c.alive && not c.released) t.peers
          in
          List.iter (fun c -> c.owing <- c.owing + 1) live;
          live)
    in
    if targets <> [] then bump t "oob_broadcasts";
    List.iter
      (fun conn ->
        (if conn.alive then
           try write_all conn (line ^ "\n")
           with
           | Unix.Unix_error
               ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
                 | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT ),
                 _,
                 _ )
           | Sys_error _
           ->
             bump t "write_drops";
             shutdown_conn conn);
        Mutex.lock t.lock;
        conn.owing <- conn.owing - 1;
        maybe_release t conn;
        Mutex.unlock t.lock)
      targets
  in
  let summary =
    Pool.run ~workers ~config ~queue_depth ?max_restarts ?restart_backoff_ms
      ?shed_grace_ms
      ~on_lame_duck:(fun () -> t.lame <- true)
      ~emit_oob ~next ~emit ()
  in
  t.finished <- true;
  Thread.join accept_thr;
  with_lock t.reg_lock (fun () ->
      Metrics.merge ~into:summary.Pool.metrics t.reg);
  summary
