(** [mhc serve --listen] — the TCP front end.

    A listener multiplexing many concurrent client connections onto one
    supervised {!Tc_scale.Pool}: each connection speaks the same NDJSON
    request/response protocol as stdio serve (same ops, same failure
    classes, same {!Typeclasses.Serve.bounded_next} line-cap semantics,
    CRLF tolerated), and every request is answered on the connection
    that sent it, in that connection's send order.

    {2 Connection lifecycle}

    A connection moves through [accepted -> reading -> draining-out ->
    closed]. One reader thread per connection scans its bytes into
    request lines (bounded buffering: bytes past the line cap are
    discarded as they stream, retaining one byte so the request still
    answers [bad-request]/oversized) and pushes them onto a bounded
    ingest queue — the backpressure seam between sockets and the pool.
    The pool coordinator alone pops the queue ([next]) and the pool's
    emitter thread alone writes responses ([emit]); since the pool
    emits exactly one response per request in pop order, a FIFO of
    per-request connection references is enough to route every response
    to the right socket — no response can ever be delivered to the
    wrong connection. A connection's socket is never closed while
    responses are still owed to it: teardown shuts the file descriptor
    down and defers [close] until the owed count reaches zero, so a
    freshly-accepted connection can never reuse the descriptor early.

    {2 Robustness}

    - {b Admission}: past [max_conns] concurrent connections, a new
      arrival is answered with a single [{"class":"overloaded"}] line
      and closed ([net/rejected]).
    - {b Deadlines}: a connection mid-line longer than
      [read_timeout_ms] (a slowloris trickling bytes), or quiet between
      requests longer than [idle_timeout_ms], is reaped ([net/reaped])
      without affecting its neighbors.
    - {b Fault isolation}: a client that vanishes (EPIPE on write,
      ECONNRESET on read) loses only its own in-flight responses
      ([net/write_drops]); the pool's one-response-per-request
      accounting and every other connection are untouched.
    - {b Graceful drain}: {!drain} (async-signal-safe — the CLI calls
      it from SIGTERM/SIGINT handlers) stops accepting, closes the
      listener, stops reading from every connection, and lets the pool
      finish the requests already read. If the drain outlives
      [drain_timeout_ms], [on_drain_deadline] fires (the CLI emits its
      final stats snapshot and exits 0 there). The [ready] probe flips
      false the moment drain begins, and also when the pool enters
      lame-duck ({!Tc_scale.Pool}'s restart budget spent).

    {2 Telemetry}

    The listener's own registry (merged into the pool summary and into
    in-band [stats]/[metrics] views): counters [net/accepted],
    [net/rejected], [net/reaped], [net/dropped] (injected connection
    drops), [net/accept_fails], [net/write_drops], [net/oob_broadcasts]
    (spontaneous snapshot lines fanned out); gauges [net/conns]
    (current) and [net/conns_peak] (high-water); histogram
    [net/conn_lifetime_ms]. None of it is [serve/*], so the serve
    invariant — per-op latency counts summing exactly to
    [serve/requests] — keeps holding in every merged snapshot.

    {2 Out-of-band lines}

    Spontaneous metrics snapshots ([config.snapshot_every] > 0) work
    over TCP: the pool routes them through its emitter thread as
    out-of-band lines, and the front end {e broadcasts} each one to
    every live connection instead of popping the response-routing FIFO
    — responses stay strictly paired with requests (the PR 9
    [Queue.Empty] regression stays fixed with snapshots {e on}).
    Broadcast writes follow the same bounded-write/owing discipline as
    responses: a slow or vanished client only loses its own lines.
    In-band [trace] requests dump the shared flight recorder (see
    {!Tc_obs.Rtrace}) like any other op.

    Fault injection: {!Tc_resilience.Inject.Accept_fail} (accept loop
    counts and continues), [Conn_drop] (abrupt connection teardown
    mid-read), [Slow_read] (simulated stall, reaped through the
    deadline path). *)

module Serve = Typeclasses.Serve
module Pool = Tc_scale.Pool

(** Raised by {!create} when the address cannot be bound (port already
    in use, unresolvable host). The message is the CLI diagnostic. *)
exception Bind_error of string

type t

val create :
  ?backlog:int ->
  ?max_conns:int ->
  ?read_timeout_ms:int ->
  ?idle_timeout_ms:int ->
  ?drain_timeout_ms:int ->
  ?on_drain_deadline:(unit -> unit) ->
  host:string ->
  port:int ->
  unit ->
  t
(** Bind and listen (raising {!Bind_error} on failure — [port = 0]
    binds an ephemeral port, see {!port}). Defaults: backlog 64,
    [max_conns] 256, [read_timeout_ms] 10000, [idle_timeout_ms] 60000
    ([0] disables either deadline), [drain_timeout_ms] 5000,
    [on_drain_deadline] no-op. Also ignores SIGPIPE process-wide: a
    vanished client must surface as an EPIPE error on its own
    connection, never kill the server. *)

val port : t -> int
(** The bound port — the kernel's choice when [create] was given
    [port = 0]. *)

val drain : t -> unit
(** Request a graceful drain. Async-signal-safe (sets a flag the accept
    loop polls within ~100ms; no locks). Idempotent. *)

val draining : t -> bool

val metrics_view : t -> Tc_obs.Metrics.t
(** A point-in-time copy of the listener registry, safe to merge from
    any domain. *)

val run :
  t ->
  ?workers:int ->
  ?queue_depth:int ->
  ?max_restarts:int ->
  ?restart_backoff_ms:float ->
  ?shed_grace_ms:float ->
  ?config:Serve.config ->
  unit ->
  Pool.summary
(** Serve until drained: accept connections, pump their requests
    through a {!Pool.run} with the given knobs (same defaults), and
    block until the drain completes — every request read before the
    drain has its response written (or counted [net/write_drops]) and
    all connections are closed. The given [config]'s [ready] and
    [extra_metrics] are composed with (not replaced by) the listener's
    own: readiness additionally requires "not draining, not lame-duck",
    and the listener registry joins the reported metrics view. The
    returned summary's registry includes the [net/*] instruments. *)
