(** Code generation for instance dictionaries.

    For every instance declaration [instance ctx => C (T a1 .. an)] we emit a
    top-level binding

    {v d$C$T = \dicts(ctx) -> MkDict [ ...slots... ] v}

    (paper §4: "a definition is inserted into the program which binds the
    dictionary value, a tuple of method functions, to a variable"). Slot
    contents depend on the layout strategy; overloaded dictionaries capture
    their sub-dictionaries by partial application, exactly as the paper's
    [eqList] example stores its [eq] argument. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Core = Tc_core_ir.Core

(** Parameter name for the dictionary of [cls] on instance-head variable
    [i]. Deterministic, so impl bindings and dictionary bindings agree. *)
let param_name i cls =
  Ident.intern (Printf.sprintf "d$%d$%s" i (Ident.text cls))

(** The instance's dictionary parameters, param-major order. *)
let dict_params (inst : Class_env.inst_info) : (int * Ident.t * Ident.t) list =
  List.concat
    (List.mapi
       (fun i ctx -> List.map (fun c -> (i, c, param_name i c)) ctx)
       (Array.to_list inst.in_context))

(** Dictionary for class [cls] on instance-head variable [i], built from the
    instance's own dictionary parameters (via superclass extraction when the
    context provides a stronger class). *)
let dict_for env strategy (inst : Class_env.inst_info) ~(param : int) cls :
    Core.expr =
  let available = inst.in_context.(param) in
  match List.find_opt (fun c' -> Class_env.implies env c' cls) available with
  | Some c' ->
      Access.super_dict env strategy ~loc:inst.in_loc ~have:c' ~target:cls
        (Core.Var (param_name param c'))
  | None ->
      invalid_arg
        (Fmt.str
           "Construct.dict_for: instance %a %a context cannot supply %a for \
            argument %d"
           Ident.pp inst.in_class Ident.pp inst.in_tycon Ident.pp cls param)

(** Dictionary expression for another instance [target] at the same head,
    e.g. the superclass instance (S, T), using this instance's parameters. *)
let rec dict_of_instance env strategy ~(from : Class_env.inst_info)
    (target : Class_env.inst_info) : Core.expr =
  let args =
    List.concat
      (List.mapi
         (fun i ctx -> List.map (fun c -> dict_for env strategy from ~param:i c) ctx)
         (Array.to_list target.in_context))
  in
  Core.apps (Core.Var target.in_dict) args

(** The expression filling one method slot. [self] names the dictionary
    under construction (needed by default methods). *)
and method_slot env strategy ~(self : Ident.t)
    ~(from : Class_env.inst_info) (owner_inst : Class_env.inst_info)
    (meth : Ident.t) : Core.expr =
  match List.assoc_opt meth owner_inst.in_impls with
  | Some (Class_env.User_impl impl) ->
      (* the impl lambda-binds its own instance's context dictionaries; for a
         superclass instance these are built from [from]'s parameters *)
      let args =
        if Ident.equal owner_inst.in_dict from.in_dict then
          List.map (fun (_, _, p) -> Core.Var p) (dict_params owner_inst)
        else
          List.concat
            (List.mapi
               (fun i ctx ->
                 List.map (fun c -> dict_for env strategy from ~param:i c) ctx)
               (Array.to_list owner_inst.in_context))
      in
      Core.apps (Core.Var impl) args
  | Some Class_env.Default_impl ->
      let self_dict =
        if Ident.equal owner_inst.in_dict from.in_dict then Core.Var self
        else dict_of_instance env strategy ~from owner_inst
      in
      Core.App
        ( Core.Var
            (Class_env.default_name ~cls:owner_inst.in_class ~meth),
          self_dict )
  | None ->
      invalid_arg
        (Fmt.str "Construct.method_slot: no impl for %a in instance %a %a"
           Ident.pp meth Ident.pp owner_inst.in_class Ident.pp
           owner_inst.in_tycon)

(** The body of an instance's dictionary binding. *)
let instance_dict_expr env strategy (inst : Class_env.inst_info) : Core.expr =
  let self = Ident.gensym "self" in
  let tag =
    { Core.dt_class = inst.in_class; dt_tycon = inst.in_tycon;
      dt_site = Core.fresh_site ~loc:inst.in_loc () }
  in
  let uses_default = ref false in
  let fields =
    match strategy with
    | Layout.Nested ->
        let ci = Class_env.class_exn env inst.in_class in
        let supers =
          List.map
            (fun s ->
              let sinst =
                Option.get
                  (Class_env.find_instance env ~cls:s ~tycon:inst.in_tycon)
              in
              dict_of_instance env strategy ~from:inst sinst)
            ci.ci_supers
        in
        let methods =
          List.map
            (fun m ->
              (match List.assoc_opt m inst.in_impls with
               | Some Class_env.Default_impl -> uses_default := true
               | _ -> ());
              method_slot env strategy ~self ~from:inst inst m)
            ci.ci_methods
        in
        supers @ methods
    | Layout.Flat ->
        List.map
          (fun (owner, m) ->
            if Ident.equal owner inst.in_class then begin
              (match List.assoc_opt m inst.in_impls with
               | Some Class_env.Default_impl -> uses_default := true
               | _ -> ());
              method_slot env strategy ~self ~from:inst inst m
            end
            else
              let oinst =
                Option.get
                  (Class_env.find_instance env ~cls:owner ~tycon:inst.in_tycon)
              in
              method_slot env strategy ~self ~from:inst oinst m)
          (Layout.flat_slots env inst.in_class)
  in
  let dict = Core.MkDict (tag, fields) in
  let body =
    if !uses_default then
      (* default methods receive the dictionary being built: tie the knot *)
      Core.Let (Core.Rec [ { b_name = self; b_expr = dict } ], Core.Var self)
    else dict
  in
  let params = List.map (fun (_, _, p) -> p) (dict_params inst) in
  Core.lam params body

let instance_dict_binding env strategy inst : Core.bind =
  { Core.b_name = inst.Class_env.in_dict;
    b_expr = instance_dict_expr env strategy inst }

(** Dictionary bindings for every instance in the environment. *)
let all_dict_bindings env strategy : Core.bind list =
  List.map (instance_dict_binding env strategy) (Class_env.all_instances env)
