(** Code generation for instance dictionaries (paper §4): one top-level
    binding [d$C$T = \dicts(ctx) -> MkDict [...]] per instance, with
    overloaded dictionaries capturing their sub-dictionaries by partial
    application. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Core = Tc_core_ir.Core

(** Parameter name of the dictionary for [cls] on head variable [i]. *)
val param_name : int -> Ident.t -> Ident.t

(** The instance's dictionary parameters, param-major order. *)
val dict_params : Class_env.inst_info -> (int * Ident.t * Ident.t) list

(** The dictionary body for one instance. *)
val instance_dict_expr :
  Class_env.t -> Layout.strategy -> Class_env.inst_info -> Core.expr

val instance_dict_binding :
  Class_env.t -> Layout.strategy -> Class_env.inst_info -> Core.bind

(** Dictionary bindings for every instance in the environment. *)
val all_dict_bindings : Class_env.t -> Layout.strategy -> Core.bind list
