(** Code generation for consulting dictionaries. Generated [Sel]/[MkDict]
    nodes are minted fresh dispatch sites at [loc] (default {!Loc.none})
    for runtime profiling. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Core = Tc_core_ir.Core

(** [method_access env strategy ~loc ~have ~cls ~meth dict] selects method
    [meth] of class [cls] out of [dict], a dictionary for [have] (where
    [have] implies [cls]). *)
val method_access :
  Class_env.t ->
  Layout.strategy ->
  ?loc:Loc.t ->
  have:Ident.t ->
  cls:Ident.t ->
  meth:Ident.t ->
  Core.expr ->
  Core.expr

(** [super_dict env strategy ~loc ~have ~target dict] produces a
    [target]-class dictionary from a [have]-class one: a selection chain
    when nested, a repack when flat (the §8.1 trade-off). *)
val super_dict :
  Class_env.t ->
  Layout.strategy ->
  ?loc:Loc.t ->
  have:Ident.t ->
  target:Ident.t ->
  Core.expr ->
  Core.expr
