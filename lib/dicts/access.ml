(** Code generation for consulting dictionaries: method selection and
    superclass-dictionary extraction, under either layout.

    Every generated [Sel]/[MkDict] node is minted a fresh dispatch site
    ({!Core.fresh_site}) carrying [loc] — the source position of the
    overloaded occurrence being translated — so runtime profiling can rank
    call sites. *)

open Tc_support
module Class_env = Tc_types.Class_env
module Core = Tc_core_ir.Core

(** [method_access env strategy ~loc ~have ~cls ~meth dict] selects method
    [meth] of class [cls] out of [dict], a dictionary for class [have]
    (where [have] implies [cls]). *)
let method_access env strategy ?(loc = Loc.none) ~(have : Ident.t)
    ~(cls : Ident.t) ~(meth : Ident.t) (dict : Core.expr) : Core.expr =
  match strategy with
  | Layout.Flat ->
      let idx = Layout.flat_index env have ~owner:cls ~meth in
      Core.Sel
        ( { sel_class = have; sel_index = idx; sel_label = Ident.text meth;
            sel_site = Core.fresh_site ~loc () },
          dict )
  | Layout.Nested ->
      let chain =
        match Layout.super_chain env ~have ~target:cls with
        | Some c -> c
        | None ->
            invalid_arg
              (Fmt.str "Access.method_access: %a does not imply %a" Ident.pp
                 have Ident.pp cls)
      in
      let dict', _ =
        List.fold_left
          (fun (d, at) s ->
            let idx = Option.get (Layout.nested_super_index env at s) in
            ( Core.Sel
                ( { Core.sel_class = at; sel_index = idx;
                    sel_label = "super:" ^ Ident.text s;
                    sel_site = Core.fresh_site ~loc () },
                  d ),
              s ))
          (dict, have) chain
      in
      let idx = Layout.nested_method_index env cls meth in
      Core.Sel
        ( { sel_class = cls; sel_index = idx; sel_label = Ident.text meth;
            sel_site = Core.fresh_site ~loc () },
          dict' )

(** [super_dict env strategy ~loc ~have ~target dict] produces a dictionary
    value for class [target] given [dict] for class [have] (where [have]
    implies [target]). Under the nested layout this is a selection chain;
    under the flat layout a fresh dictionary must be packed (the §8.1
    trade-off). *)
let super_dict env strategy ?(loc = Loc.none) ~(have : Ident.t)
    ~(target : Ident.t) (dict : Core.expr) : Core.expr =
  if Ident.equal have target then dict
  else
    match strategy with
    | Layout.Nested ->
        let chain =
          match Layout.super_chain env ~have ~target with
          | Some c -> c
          | None ->
              invalid_arg
                (Fmt.str "Access.super_dict: %a does not imply %a" Ident.pp have
                   Ident.pp target)
        in
        let dict', _ =
          List.fold_left
            (fun (d, at) s ->
              let idx = Option.get (Layout.nested_super_index env at s) in
              ( Core.Sel
                  ( { Core.sel_class = at; sel_index = idx;
                      sel_label = "super:" ^ Ident.text s;
                      sel_site = Core.fresh_site ~loc () },
                    d ),
                s ))
            (dict, have) chain
        in
        dict'
    | Layout.Flat ->
        (* repack: select each slot of [target]'s flat layout out of the
           wider [have] dictionary *)
        let slots = Layout.flat_slots env target in
        let fields =
          List.map
            (fun (owner, meth) ->
              let idx = Layout.flat_index env have ~owner ~meth in
              Core.Sel
                ( { Core.sel_class = have; sel_index = idx;
                    sel_label = Ident.text meth;
                    sel_site = Core.fresh_site ~loc () },
                  dict ))
            slots
        in
        Core.MkDict
          ( { dt_class = target; dt_tycon = Ident.intern "<repack>";
              dt_site = Core.fresh_site ~loc () },
            fields )
