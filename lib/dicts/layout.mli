(** Dictionary layout strategies (paper §8.1): {b nested} (direct
    superclass dictionaries as fields, cheap construction, chained
    selection) vs {b flat} (all methods of the class and its transitive
    superclasses at top level, one-hop selection, wider construction and
    repacking on superclass extraction). *)

open Tc_support
module Class_env = Tc_types.Class_env

type strategy = Nested | Flat

val strategy_name : strategy -> string

(** Flat slot list: (owning class, method) pairs — the class's own methods
    first, then each direct superclass's slots, deduplicated. *)
val flat_slots : Class_env.t -> Ident.t -> (Ident.t * Ident.t) list

(** Position of a direct superclass's dictionary in a nested layout. *)
val nested_super_index : Class_env.t -> Ident.t -> Ident.t -> int option

(** Position of one of the class's own methods in a nested layout. *)
val nested_method_index : Class_env.t -> Ident.t -> Ident.t -> int

(** Number of fields of a class's dictionary under a strategy. *)
val width : Class_env.t -> strategy -> Ident.t -> int

(** Direct-superclass hops from [have] to [target] (nested layout). *)
val super_chain :
  Class_env.t -> have:Ident.t -> target:Ident.t -> Ident.t list option

(** Index of a method in a flat dictionary. *)
val flat_index : Class_env.t -> Ident.t -> owner:Ident.t -> meth:Ident.t -> int
