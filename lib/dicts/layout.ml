(** Dictionary layout strategies (paper §8.1).

    A dictionary for class [C] is a tuple. Two layouts are supported:

    - {b Nested}: one slot per *direct* superclass dictionary, followed by
      one slot per method of [C]. Reaching a superclass method follows a
      chain of selections; dictionaries are cheap to build.
    - {b Flat}: one slot per method of [C] {e and all transitive
      superclasses} (deduplicated, canonical order). Every method is one
      selection away, but dictionaries are wider to build and extracting a
      superclass dictionary value requires repacking.

    The paper: "flattening … slows down dictionary construction but speeds
    up selection operations". Experiment E6 measures this trade-off. *)

open Tc_support
module Class_env = Tc_types.Class_env

type strategy = Nested | Flat

let strategy_name = function Nested -> "nested" | Flat -> "flat"

(** Flat slot list of a class: (owning class, method name) pairs. Methods of
    the class itself first (declaration order), then each direct superclass's
    flat slots in order, with duplicates (diamond inheritance) dropped. *)
let flat_slots env (cls : Ident.t) : (Ident.t * Ident.t) list =
  let seen = Ident.Tbl.create 8 in
  let out = ref [] in
  let rec go c =
    let ci = Class_env.class_exn env c in
    List.iter
      (fun m ->
        if not (Ident.Tbl.mem seen m) then begin
          Ident.Tbl.add seen m ();
          out := (c, m) :: !out
        end)
      ci.ci_methods;
    List.iter go ci.ci_supers
  in
  go cls;
  List.rev !out

(** Nested slot count helpers. *)
let nested_super_index env (cls : Ident.t) (super : Ident.t) : int option =
  let ci = Class_env.class_exn env cls in
  let rec find i = function
    | [] -> None
    | s :: _ when Ident.equal s super -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 ci.ci_supers

let nested_method_index env (cls : Ident.t) (meth : Ident.t) : int =
  let ci = Class_env.class_exn env cls in
  let n_supers = List.length ci.ci_supers in
  let rec find i = function
    | [] -> invalid_arg "Layout.nested_method_index: not a method of the class"
    | m :: _ when Ident.equal m meth -> i
    | _ :: rest -> find (i + 1) rest
  in
  n_supers + find 0 ci.ci_methods

(** Number of fields in a [cls] dictionary under [strategy]. *)
let width env strategy (cls : Ident.t) : int =
  match strategy with
  | Flat -> List.length (flat_slots env cls)
  | Nested ->
      let ci = Class_env.class_exn env cls in
      List.length ci.ci_supers + List.length ci.ci_methods

(** The chain of direct-superclass hops from [have] to [target] under the
    nested layout (empty if [have = target]). *)
let super_chain env ~(have : Ident.t) ~(target : Ident.t) : Ident.t list option =
  let rec search path c =
    if Ident.equal c target then Some (List.rev path)
    else
      let ci = Class_env.class_exn env c in
      List.fold_left
        (fun acc s -> match acc with Some _ -> acc | None -> search (s :: path) s)
        None ci.ci_supers
  in
  search [] have

let flat_index env (cls : Ident.t) ~(owner : Ident.t) ~(meth : Ident.t) : int =
  let slots = flat_slots env cls in
  let rec find i = function
    | [] ->
        invalid_arg
          (Fmt.str "Layout.flat_index: %a.%a not in flat dictionary of %a"
             Ident.pp owner Ident.pp meth Ident.pp cls)
    | (_, m) :: _ when Ident.equal m meth -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 slots
