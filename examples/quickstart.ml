(* Quickstart: compile and run a MiniHaskell program through the public API.

   Run with:  dune exec examples/quickstart.exe *)

open Typeclasses

let program =
  {|
-- A user-defined class with a superclass and a default method.
class Text a => Pretty a where
  pretty  :: a -> String
  pretty x = "<" ++ str x ++ ">"

data Point = Point Int Int deriving (Eq, Text)

instance Pretty Point where
  pretty (Point x y) = "(" ++ str x ++ "," ++ str y ++ ")"

instance Pretty Int where
  pretty n = str n          -- no angle brackets for numbers

instance Pretty Bool        -- uses the default method

prettyAll :: Pretty a => [a] -> String
prettyAll xs = concat (map pretty xs)

main = ( prettyAll [Point 1 2, Point 3 4]
       , prettyAll [True, False]
       , prettyAll [10, 20 :: Int]
       , Point 1 2 == Point 1 2 )
|}

let () =
  (* 1. compile: parse → static analysis → inference + dictionary conversion *)
  let compiled = Pipeline.compile ~file:"quickstart.mhs" program in

  (* 2. the inferred qualified types of the program's top-level bindings *)
  Fmt.pr "Inferred types:@.";
  List.iter
    (fun (name, scheme) ->
      Fmt.pr "  %s :: %s@." (Tc_support.Ident.text name)
        (Tc_types.Scheme.to_string scheme))
    compiled.user_schemes;

  (* 3. run the translated program *)
  let result = Pipeline.exec compiled in
  Fmt.pr "@.Result: %s@." result.rendered;
  Fmt.pr "Dictionary ops: %d constructions, %d selections@."
    result.counters.dict_constructions result.counters.selections;

  (* 4. the same program, fully specialized: dispatch disappears (§9) *)
  let optimized = Pipeline.optimize Tc_opt.Opt.all compiled in
  let result' = Pipeline.exec optimized in
  Fmt.pr "@.After specialization: %s@." result'.rendered;
  Fmt.pr "Dictionary ops: %d constructions, %d selections@."
    result'.counters.dict_constructions result'.counters.selections
