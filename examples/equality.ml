(* The paper's running example (§2–§7): polymorphic, overloaded, extensible
   equality.

   Shows the exact artifacts the paper describes:
   - the qualified type inferred for `member`;
   - the dictionary-passing translation (member receives an == function);
   - context reduction: `member [1] xss` needs Eq [Int], which the instance
     `Eq a => Eq [a]` reduces to Eq Int;
   - the overloaded list dictionary capturing its element dictionary by
     partial application (the paper's eqList);
   - §8.8: the naive translation rebuilds `eqDList d` at every recursion
     step; hoisting + inner entry points build it once.

   Run with:  dune exec examples/equality.exe *)

open Typeclasses
module Core = Tc_core_ir.Core

let program =
  {|
-- §2: the class of equality types, and a function defined from it.
-- (Eq, the Int and list instances, and member itself also live in the
-- prelude; we define fresh names here to show their translations.)

data Shape = Circle Int | Square Int deriving (Eq, Text)

sameShape :: Shape -> Shape -> Bool
sameShape a b = a == b

-- the paper's member, at several instances
isMember :: Eq a => a -> [a] -> Bool
isMember x []     = False
isMember x (y:ys) = x == y || isMember x ys

deepMember :: Eq a => [[a]] -> Bool
deepMember xss = isMember (head xss) (tail xss)

main = ( isMember 2 [1,2,3]              -- Eq Int
       , isMember [1] [[2],[1],[3]]      -- Eq [Int]: context reduction
       , deepMember [[1],[2],[1]]
       , isMember (Circle 1) [Square 1, Circle 1]
       , sameShape (Circle 2) (Circle 2) )
|}

let show_binding (compiled : Pipeline.compiled) name =
  let id = Tc_support.Ident.intern name in
  List.iter
    (fun g ->
      List.iter
        (fun (b : Core.bind) ->
          if Tc_support.Ident.equal b.b_name id then
            Fmt.pr "%a@.@." Tc_core_ir.Core_pp.pp_group g)
        (Core.binds_of_group g))
    compiled.Pipeline.core.p_binds

let () =
  let compiled = Pipeline.compile ~file:"equality.mhs" program in

  Fmt.pr "== Inferred types ==@.";
  List.iter
    (fun (name, scheme) ->
      Fmt.pr "  %s :: %s@." (Tc_support.Ident.text name)
        (Tc_types.Scheme.to_string scheme))
    compiled.user_schemes;

  Fmt.pr "@.== Dictionary translation of isMember ==@.";
  Fmt.pr "(compare §3: \"the implementation of member is simply@.";
  Fmt.pr " parametrized by the appropriate definition of equality\")@.@.";
  show_binding compiled "isMember";

  Fmt.pr "== The list instance's dictionary (the paper's eqList) ==@.";
  show_binding compiled "d$Eq$List";
  show_binding compiled "m$Eq$List$==";

  Fmt.pr "== main: call sites pass concrete dictionaries ==@.";
  show_binding compiled "main";

  let r = Pipeline.exec compiled in
  Fmt.pr "Result: %s@." r.rendered;
  Fmt.pr "  dictionary constructions: %d, method selections: %d@.@."
    r.counters.dict_constructions r.counters.selections;

  (* §8.8: compare dictionary construction counts on a deep recursion,
     naive vs hoisted translation. *)
  (* [chainMember] needs an Eq [a] dictionary inside its recursion: the
     naive translation rebuilds (d$Eq$List d) at every step, like the
     paper's doList example. *)
  let deep =
    {|
chainMember :: Eq a => a -> [[a]] -> Bool
chainMember x []       = False
chainMember x (ys:yss) = member [x] [ys] || chainMember x yss

main = chainMember (400 :: Int) (map (\n -> [n]) (enumFromTo 1 400))
|}
  in
  let naive = Pipeline.compile ~file:"deep.mhs" deep in
  let hoisted =
    Pipeline.optimize Tc_opt.Opt.[ Simplify; Inner_entry; Hoist ] naive
  in
  let rn = Pipeline.exec naive and rh = Pipeline.exec hoisted in
  Fmt.pr "== §8.8: repeated dictionary construction (list length 400) ==@.";
  Fmt.pr "  naive translation:    %d dictionary constructions@."
    rn.counters.dict_constructions;
  Fmt.pr "  hoisted + inner entry: %d dictionary constructions@."
    rh.counters.dict_constructions;
  assert (rn.rendered = rh.rendered)
