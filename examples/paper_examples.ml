(* The worked examples of paper §7 ("Examples"), reproduced end to end.

   §7 walks two programs through type-variable instantiation, placeholder
   insertion, unification, and placeholder resolution. This example feeds
   the same programs through our checker and prints the artifacts the
   paper draws as trees: the inferred qualified type and the final
   dictionary-converted code.

   Run with:  dune exec examples/paper_examples.exe *)

open Typeclasses
module Core = Tc_core_ir.Core

let show_binding (c : Pipeline.compiled) name =
  let id = Tc_support.Ident.intern name in
  List.iter
    (fun g ->
      List.iter
        (fun (b : Core.bind) ->
          if Tc_support.Ident.equal b.b_name id then
            Fmt.pr "%a@." Tc_core_ir.Core_pp.pp_group g)
        (Core.binds_of_group g))
    c.Pipeline.core.p_binds

let types (c : Pipeline.compiled) =
  List.iter
    (fun (n, s) ->
      Fmt.pr "  %s :: %s@." (Tc_support.Ident.text n)
        (Tc_types.Scheme.to_string s))
    c.user_schemes

let () =
  (* -------- first example --------------------------------------- *)
  (* paper:   class Num a where (+) :: a -> a -> a
              f = \x -> x + f x
     "The type in the placeholder associated with + is part of the
      parameter environment. This indicates that a dictionary passed into
      f will contain the implementation of + appropriate for the
      parameter x. At execution time, the sel+ function will retrieve
      this addition function from the dictionary."                       *)
  Fmt.pr "== §7, first example:  f = \\x -> x + f x ==@.@.";
  Fmt.pr "(written as a function binding, f x = ..., since a simple pattern@.\
          binding would trigger the §8.7 monomorphism restriction)@.@.";
  let c1 = Pipeline.compile ~file:"paper1.mhs" "f x = x + f x\nmain = 0" in
  Fmt.pr "inferred type:@.";
  types c1;
  Fmt.pr "@.translation (dictionary bound by \\d, + selected from it,@.\
          the recursive call passing d unchanged — the paper's first,@.\
          simpler translation):@.@.";
  show_binding c1 "f";

  (* the paper then notes: "A better choice would have been to create an
     inner entry to f after d is bound and use this for the recursive
     call to avoid passing d repeatedly." — our Inner_entry pass: *)
  let c1' = Pipeline.optimize Tc_opt.Opt.[ Simplify; Inner_entry ] c1 in
  Fmt.pr "@.after the inner-entry transformation (the paper's \"better \
          choice\"):@.@.";
  show_binding c1' "f";

  (* -------- second example -------------------------------------- *)
  (* paper:   g = \x -> print (x, length x)
     with Text instances for pairs, Int and lists. "The placeholder is
     resolved to a specific printer for 2-tuples. As this function is
     overloaded, further placeholder resolution is required for the
     types associated with the tuple components."

     Our prelude's printing method is `str`, and `length` has type
     [a] -> Int, exactly as in the paper.                                *)
  Fmt.pr "@.== §7, second example:  g = \\x -> str (x, length x) ==@.@.";
  let c2 =
    Pipeline.compile ~file:"paper2.mhs" "g x = str (x, length x)\nmain = 0"
  in
  Fmt.pr "inferred type (the paper's: Text a => [a] -> String):@.";
  types c2;
  Fmt.pr "@.translation (the tuple printer applied to the component@.\
          dictionaries: d-Text-List d, and d-Text-Int — compare the@.\
          paper's final tree \"print-tuple2 (d-Text-List d) d-Text-Int\"):@.@.";
  show_binding c2 "g";

  (* -------- run them -------------------------------------------- *)
  Fmt.pr "@.== running both ==@.";
  let c3 =
    Pipeline.compile ~file:"paper3.mhs"
      {|
f :: Num a => a -> a
f x = if x == 0 then x else x + f (x - 1)
g x = str (x, length x)
main = (f (10 :: Int), g "ab", g [True])
|}
  in
  let r = Pipeline.exec c3 in
  Fmt.pr "result: %s@." r.rendered
