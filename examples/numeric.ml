(* Numeric overloading (the paper's second headline example, §1):

   - `double = \x -> x + x` keeps + overloaded: "there is no way to fix any
     single interpretation for the + symbol";
   - the Num class has Eq and Text superclasses (§8.1): code constrained
     only by Num can still compare and print;
   - integer literals are themselves overloaded (fromInt), with Haskell
     defaulting resolving ambiguity;
   - `parse` is overloaded in its *result* type, like the paper's `read` —
     fine with dictionaries, impossible with run-time tags (§3).

   Run with:  dune exec examples/numeric.exe *)

open Typeclasses

let program =
  {|
double :: Num a => a -> a
double x = x + x

-- superclasses at work: Num a implies Eq a and Text a
describeSum :: Num a => [a] -> String
describeSum xs =
  if total == fromInt 0 then "zero" else str total
  where total = sum xs

-- return-type overloading: which parser runs depends on the context
addParsed :: String -> String -> Int
addParsed a b = parse a + parse b

mean :: [Float] -> Float
mean xs = sum xs / fromIntegral (length xs)

main = ( double 21                       -- defaults to Int
       , double 1.5                      -- Float
       , describeSum [1,2,3 :: Int]
       , describeSum [0.0, 0.0]
       , addParsed "40" "2"
       , parse "2.5" + mean [1.0, 2.0]
       , signum (negate 7) )
|}

let () =
  let compiled = Pipeline.compile ~file:"numeric.mhs" program in
  Fmt.pr "== Inferred types ==@.";
  List.iter
    (fun (name, scheme) ->
      Fmt.pr "  %s :: %s@." (Tc_support.Ident.text name)
        (Tc_types.Scheme.to_string scheme))
    compiled.user_schemes;

  let r = Pipeline.exec compiled in
  Fmt.pr "@.Result: %s@." r.rendered;

  (* The same program under the run-time tag strategy (§3): rejected,
     because parse/fromInt are overloaded only in their result types. *)
  Fmt.pr "@.== Run-time tag dispatch (§3) on the same program ==@.";
  (try
     let _ =
       Pipeline.compile
         ~opts:{ Pipeline.default_options with strategy = Pipeline.Tags }
         ~file:"numeric.mhs" program
     in
     Fmt.pr "unexpectedly compiled!@."
   with Tc_support.Diagnostic.Error d ->
     Fmt.pr "rejected, as the paper predicts:@.  %a@." Tc_support.Diagnostic.pp d);

  (* Tag dispatch is fine when every method dispatches on an argument. *)
  let tag_friendly =
    {|
double x = x + x
main = (double 21, double 1.5, [1,2] == [1,2], max 'a' 'q')
|}
  in
  let tags =
    Pipeline.compile
      ~opts:{ Pipeline.default_options with strategy = Pipeline.Tags }
      ~file:"tagfriendly.mhs" tag_friendly
  in
  let rt = Pipeline.exec tags in
  Fmt.pr "@.A tag-friendly program under tags: %s (%d tag dispatches)@."
    rt.rendered rt.counters.tag_dispatches
