(* Computing with lattices — the application area the paper cites as [7]
   (M.P. Jones, "Computing with lattices: An application of type classes",
   JFP 1992): classes as a tool for structuring mathematics, not just for
   == and +.

   A `Lattice` class with instances for Bool, pairs and *functions* — the
   last one is an instance on the -> type constructor, something run-time
   tags could never dispatch (no data to inspect), and `bottom`/`top` are
   overloaded purely in their result type.

   Run with:  dune exec examples/lattices.exe *)

open Typeclasses

let program =
  {|
class Lattice a where
  bottom :: a
  top    :: a
  join   :: a -> a -> a
  meet   :: a -> a -> a

instance Lattice Bool where
  bottom = False
  top    = True
  join x y = x || y
  meet x y = x && y

instance (Lattice a, Lattice b) => Lattice (a, b) where
  bottom = (bottom, bottom)
  top    = (top, top)
  join (a1, b1) (a2, b2) = (join a1 a2, join b1 b2)
  meet (a1, b1) (a2, b2) = (meet a1 a2, meet b1 b2)

-- pointwise lattice of functions: an instance on the -> constructor
instance Lattice b => Lattice (a -> b) where
  bottom = \x -> bottom
  top    = \x -> top
  join f g = \x -> join (f x) (g x)
  meet f g = \x -> meet (f x) (g x)

-- least upper bound of a list
lub :: Lattice a => [a] -> a
lub = foldr join bottom

-- greatest lower bound
glb :: Lattice a => [a] -> a
glb = foldr meet top

-- a fixpoint iterator over a lattice (Kleene iteration from bottom)
fix :: (Eq a, Lattice a) => (a -> a) -> a
fix f = iterateFix f bottom

iterateFix :: Eq a => (a -> a) -> a -> a
iterateFix f x = if f x == x then x else iterateFix f (f x)

-- reachability in a tiny 2-node graph encoded as a pair of Bools:
-- node 1 is reachable; node 2 is reachable if node 1 is.
step (a, b) = (True, join b a)

divisibleBy :: Int -> Int -> Bool
divisibleBy d n = mod n d == 0

main = ( lub [(False, True), (True, False)]    -- pairwise join
       , glb [(True, True), (True, False)]
       , fix step                               -- (True, True)
       , join (divisibleBy 2) (divisibleBy 3) 9 -- pointwise: 9 div by 2 or 3?
       , meet (divisibleBy 2) (divisibleBy 3) 6
       , lub [divisibleBy 2, divisibleBy 5] 10 )
|}

let () =
  let compiled = Pipeline.compile ~file:"lattices.mhs" program in
  Fmt.pr "== Inferred types ==@.";
  List.iter
    (fun (name, scheme) ->
      Fmt.pr "  %s :: %s@." (Tc_support.Ident.text name)
        (Tc_types.Scheme.to_string scheme))
    compiled.user_schemes;
  let r = Pipeline.exec compiled in
  Fmt.pr "@.Result: %s@." r.rendered;
  Fmt.pr "  (%d dictionary constructions, %d selections)@."
    r.counters.dict_constructions r.counters.selections
