(** Benchmark utilities: Bechamel timing wrapper and table rendering. *)

open Bechamel

(** Median run time in nanoseconds of [f], measured with Bechamel (OLS
    estimate against the run counter). One [Test.make] per measured row. *)
let time_ns ?(quota = 0.25) name (f : unit -> 'a) : float =
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ est ] -> (
      match Analyze.OLS.estimates est with
      | Some [ v ] -> v
      | _ -> Float.nan)
  | _ -> Float.nan

let ms_of_ns ns = ns /. 1.e6

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json).                                   *)
(* ------------------------------------------------------------------ *)

(** When set, tables are suppressed and recorded metrics are emitted as a
    JSON array at exit — to stdout, and one [BENCH_<EXP>.json] file per
    experiment under {!out_dir} (the committed trajectory CI compares
    fresh runs against). *)
let json_mode = ref false

(** Directory the per-experiment [BENCH_<EXP>.json] files are written to
    ([--out DIR]; default the working directory). *)
let out_dir = ref "."

let records : (string * string * string * float) list ref = ref []

let record ~experiment ~backend ~metric (value : float) =
  records := (experiment, backend, metric, value) :: !records

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let render_records rs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (e, b, m, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           {|  {"experiment": %S, "backend": %S, "metric": %S, "value": %s}|}
           e b m (num v)))
    rs;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* One file per experiment, records in emission order: a stable,
   diff-able unit the CI regression gate can compare per experiment. *)
let write_experiment_files () =
  let rs = List.rev !records in
  let exps =
    List.fold_left
      (fun acc (e, _, _, _) -> if List.mem e acc then acc else e :: acc)
      [] rs
    |> List.rev
  in
  List.iter
    (fun exp ->
      let mine = List.filter (fun (e, _, _, _) -> e = exp) rs in
      let path =
        Filename.concat !out_dir
          ("BENCH_" ^ String.uppercase_ascii exp ^ ".json")
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (render_records mine)))
    exps

let dump_json () =
  print_string (render_records (List.rev !records));
  write_experiment_files ()

(* ------------------------------------------------------------------ *)
(* Table rendering.                                                    *)
(* ------------------------------------------------------------------ *)

let print_heading id title claim =
  if not !json_mode then begin
    Fmt.pr "@.=== %s: %s ===@." id title;
    Fmt.pr "paper: %s@.@." claim
  end

let print_note fmt =
  Format.kasprintf (fun s -> if not !json_mode then Fmt.pr "%s@." s) fmt

let print_table (header : string list) (rows : string list list) =
  if !json_mode then ()
  else
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (List.iteri (fun i cell ->
         if i < cols then widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
         row)
  in
  Fmt.pr "  %s@." (line header);
  Fmt.pr "  %s@."
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> Fmt.pr "  %s@." (line r)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%+.1f%%" x
