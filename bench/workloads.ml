(** Synthetic MiniHaskell workload generators for the experiments. *)

let buf_program parts = String.concat "\n" parts

(** E1: a program with [n] overloaded functions (classes exercised heavily)
    and its monomorphic twin (same shape, primitive calls, no overloading). *)
let overloaded_program n =
  let fns =
    List.init n (fun i ->
        Printf.sprintf
          "ov%d :: (Ord a, Num a) => a -> a -> Bool\n\
           ov%d x y = x + y == y + x || x <= y && member x [y]" i i)
  in
  buf_program (fns @ [ "main = ov0 (1 :: Int) 2" ])

let monomorphic_program n =
  let fns =
    List.init n (fun i ->
        Printf.sprintf
          "mo%d :: Int -> Int -> Bool\n\
           mo%d x y = primEqInt (primAddInt x y) (primAddInt y x) || \
           primLeInt x y && memInt x [y]" i i)
  in
  buf_program
    (("memInt :: Int -> [Int] -> Bool\n\
       memInt x [] = False\n\
       memInt x (y:ys) = primEqInt x y || memInt x ys")
     :: fns
    @ [ "main = mo0 (1 :: Int) 2" ])

(** E2: dispatching a method with a [size]-step body, [calls] times —
    overloaded (dictionary selection per call) vs monomorphic twin (direct
    call). [sum (enumFromTo 1 size)] makes the body cost adjustable. *)
let dispatch_overloaded ~size ~calls =
  Printf.sprintf
    {|
class Work a where
  work :: a -> Int

instance Work Int where
  work n = busy %d + n

busy :: Int -> Int
busy k = if k == 0 then 0 else busy (k - 1)

runAll :: Work a => Int -> a -> Int
runAll n x = if n == 0 then 0 else work x + runAll (n - 1) x

main = runAll %d (1 :: Int)
|}
    size calls

let dispatch_direct ~size ~calls =
  Printf.sprintf
    {|
workInt :: Int -> Int
workInt n = busy %d + n

busy :: Int -> Int
busy k = if k == 0 then 0 else busy (k - 1)

runAll :: Int -> Int -> Int
runAll n x = if n == 0 then 0 else workInt x + runAll (n - 1) x

main = runAll %d (1 :: Int)
|}
    size calls

(** E3/E10: overloaded recursion of depth [n] (dictionaries passed through
    every call) and its monomorphic twin. *)
let overloaded_sum n =
  Printf.sprintf
    {|
mySum :: Num a => a -> a
mySum n = if n == 0 then 0 else n + mySum (n - 1)
main = mySum (%d :: Int)
|}
    n

let monomorphic_sum n =
  Printf.sprintf
    {|
mySum :: Int -> Int
mySum n = if n == 0 then 0 else n + mySum (n - 1)
main = mySum %d
|}
    n

(** E5 (§8.8): a recursion that needs an [Eq [a]] dictionary per step. *)
let chain_member n =
  Printf.sprintf
    {|
chain :: Eq a => a -> [[a]] -> Bool
chain x []       = False
chain x (ys:yss) = member [x] [ys] || chain x yss
main = chain 0 (map (\n -> [n]) (enumFromTo 1 %d))
|}
    n

(** E6 (§8.1): a superclass chain [C1 <= C2 <= ... <= Cd]; the workload
    calls the {e deepest} class's method through the {e newest} class's
    dictionary, [calls] times, from an overloaded context. *)
let hierarchy ~depth ~calls =
  let classes =
    List.init depth (fun i ->
        let i = i + 1 in
        if i = 1 then
          "class C1 a where\n  m1 :: a -> Int"
        else
          Printf.sprintf "class C%d a => C%d a where\n  m%d :: a -> Int" (i - 1)
            i i)
  in
  let instances =
    List.init depth (fun i ->
        let i = i + 1 in
        Printf.sprintf "instance C%d Int where\n  m%d n = n + %d" i i i)
  in
  (* list instances force a fresh dictionary construction at each use of
     [C_depth [Int]] (no CAF caching), exposing construction cost *)
  let list_instances =
    List.init depth (fun i ->
        let i = i + 1 in
        Printf.sprintf "instance C%d a => C%d [a] where\n  m%d xs = %d" i i i i)
  in
  let driver =
    Printf.sprintf
      {|
useDeep :: C%d a => Int -> a -> Int
useDeep n x = if n == 0 then 0 else m1 x + useDeep (n - 1) x

buildMany :: Int -> Int
buildMany n = if n == 0 then 0 else useDeep 1 [n] + buildMany (n - 1)

-- a function needing only the base class: calling it from a C%d context
-- must extract the superclass dictionary (a selection chain when nested,
-- a repack when flat)
useBase :: C1 a => a -> Int
useBase x = m1 x

extractMany :: C%d a => Int -> a -> Int
extractMany n x = if n == 0 then 0 else useBase x + extractMany (n - 1) x

main = (useDeep %d (1 :: Int), buildMany %d, extractMany %d (1 :: Int))
|}
      depth depth depth calls calls calls
  in
  buf_program (classes @ instances @ list_instances @ [ driver ])

(** E7 (§3): a dispatch-friendly equality/arithmetic workload that both
    strategies can run. *)
let tag_friendly n =
  Printf.sprintf
    {|
total []     = 0
total (x:xs) = x + total xs

eqAll :: Eq a => a -> [a] -> Bool
eqAll x []     = True
eqAll x (y:ys) = x == y && eqAll x ys

main = ( total (enumFromTo 1 %d)
       , eqAll 1 (replicate %d 1)
       , eqAll [1,2] (replicate %d [1,2]) )
|}
    n n n

(** E8 (§9): a purely monomorphic pipeline, classes in scope but unused. *)
let monomorphic_pipeline n =
  Printf.sprintf
    {|
step :: Int -> Int
step x = primAddInt (primMulInt x 3) 1

iterN :: Int -> Int -> Int
iterN n x = if primEqInt n 0 then x else iterN (primSubInt n 1) (step x)

main = iterN %d 1
|}
    n

(** The same pipeline written with overloaded operators. *)
let overloaded_pipeline n =
  Printf.sprintf
    {|
step :: Int -> Int
step x = x * 3 + 1

iterN :: Int -> Int -> Int
iterN n x = if n == 0 then x else iterN (n - 1) (step x)

main = iterN %d 1
|}
    n

(** E9: a mixed program for checker-cost profiling. *)
let checker_workload n =
  let fns =
    List.init n (fun i ->
        Printf.sprintf
          "ck%d xs x = member x xs && maximum xs == x || sum xs + x <= x" i)
  in
  buf_program (fns @ [ "main = ck0 [1,2,3] (2 :: Int)" ])
