(* Benchmark harness: one experiment per performance claim in the paper.

   The paper (PLDI'93) has no numbered tables or figures; its evaluation is
   §9 "Performance Issues" plus claims in §3 and §8. DESIGN.md defines
   experiments E1–E10, one per claim; this executable regenerates a table
   for each (operation counters from the instrumented evaluator, wall-clock
   times via Bechamel).

   Run all:        dune exec bench/main.exe
   Run a subset:   dune exec bench/main.exe -- e5 e6
*)

open Typeclasses
module C = Tc_eval.Counters
module Opt = Tc_opt.Opt
module B = Bench_util
module W = Workloads

let compile = Pipeline.compile
let flat_opts = { Pipeline.default_options with strategy = Pipeline.Dicts_flat }
let tags_opts = { Pipeline.default_options with strategy = Pipeline.Tags }

let run_counters ?(passes = []) ?opts src : C.t =
  let c = Pipeline.optimize passes (compile ?opts src) in
  (Pipeline.exec c).counters

let run_time ?quota ?(passes = []) ?opts name src : float =
  let c = Pipeline.optimize passes (compile ?opts src) in
  B.time_ns ?quota name (fun () -> ignore (Pipeline.exec c))

(* Wall clock of the bytecode VM on the same program. Lowering to
   bytecode happens once, outside the timed thunk — it is a compile
   phase, the tree backend's analogue being the core program itself. *)
let vm_time ?quota ?(passes = []) ?opts ?(mode = `Lazy) name src : float =
  let c = Pipeline.optimize passes (compile ?opts src) in
  let cons = Tc_eval.Eval.con_table_of_env c.env in
  let prog = Tc_vm.Compile.program ~mode ~cons c.core in
  B.time_ns ?quota name (fun () ->
      ignore (Tc_vm.Vm.run (Tc_vm.Vm.create_state cons) prog))

let i = string_of_int

(* The hottest selection site of a workload, from the dispatch profiler:
   "Class.method xCOUNT". Attributes the dispatch cost the table reports
   to a concrete call site instead of an aggregate counter. *)
let hot_site ?(passes = []) ?opts src : string * int =
  let c = Pipeline.optimize passes (compile ?opts src) in
  let r = Pipeline.exec ~profile:true c in
  match r.profile with
  | Some { Tc_obs.Profile.r_sels = e :: _; _ } ->
      ( Printf.sprintf "%s.%s x%d"
          (Tc_support.Ident.text e.e_site.Tc_obs.Profile.s_class)
          e.e_site.Tc_obs.Profile.s_detail e.e_count,
        e.e_count )
  | Some _ | None -> ("-", 0)

(* ================================================================== *)

let e1 () =
  B.print_heading "E1" "compile-time overhead of type classes"
    "\"our observation is that they increase compilation time only slightly\" (§9)";
  let rows =
    List.map
      (fun n ->
        let ov = W.overloaded_program n and mono = W.monomorphic_program n in
        let t_ov = B.ms_of_ns (B.time_ns "e1-ov" (fun () -> ignore (compile ov))) in
        let t_mono =
          B.ms_of_ns (B.time_ns "e1-mono" (fun () -> ignore (compile mono)))
        in
        let s_ov = (compile ov).checker_stats in
        [ i n; B.f2 t_mono; B.f2 t_ov;
          B.pct ((t_ov -. t_mono) /. t_mono *. 100.);
          i s_ov.holes_created; i s_ov.context_reductions ])
      [ 10; 30; 60 ]
  in
  B.print_table
    [ "functions"; "mono (ms)"; "classes (ms)"; "overhead";
      "placeholders"; "ctx-reductions" ]
    rows

(* The profile -> optimize loop, in process: compile, profile one
   execution, feed the spec profile back into the same artifact (site
   ids match exactly) and re-optimize with the specializing pipeline. *)
let specialised ?opts src : Pipeline.compiled =
  let c = compile ?opts src in
  let r = Pipeline.exec ~profile:true c in
  let sp = Tc_obs.Profile.spec_of_report (Option.get r.profile) in
  let c =
    {
      c with
      Pipeline.options =
        {
          c.options with
          Pipeline.specialise =
            { Pipeline.default_spec with Pipeline.spec_profile = Some sp };
        };
    }
  in
  Pipeline.optimize Opt.[ Simplify; Specialise; Simplify; Dce ] c

let vm_time_of ?quota ?(mode = `Lazy) name (c : Pipeline.compiled) : float =
  let cons = Tc_eval.Eval.con_table_of_env c.env in
  let prog = Tc_vm.Compile.program ~mode ~cons c.core in
  B.time_ns ?quota name (fun () ->
      ignore (Tc_vm.Vm.run (Tc_vm.Vm.create_state cons) prog))

let e2 () =
  B.print_heading "E2" "method dispatch: dictionary selection vs direct call"
    "\"the cost of instance function dispatch is actually quite small ... for \
     all but the simplest method functions this should be negligible\" (§9) — \
     and with profile-guided clones (§9) the dispatch is gone entirely";
  let calls = 300 in
  let rows =
    List.map
      (fun size ->
        let ov = W.dispatch_overloaded ~size ~calls in
        let direct = W.dispatch_direct ~size ~calls in
        let c_ov = run_counters ov and c_dir = run_counters direct in
        let t_ov = run_time "e2-ov" ov and t_dir = run_time "e2-dir" direct in
        let t_vm = vm_time "e2-ov-vm" ov in
        let t_dir_vm = vm_time "e2-dir-vm" direct in
        (* profile-guided specialization of the overloaded program *)
        let cs = specialised ov in
        let c_spec = (Pipeline.exec cs).counters in
        let t_spec = B.time_ns "e2-spec" (fun () -> ignore (Pipeline.exec cs)) in
        let t_spec_vm = vm_time_of "e2-spec-vm" cs in
        (* the spec_vs_direct ratios gate CI at an exact <= 1.0 bound, so
           they are measured apart from the table rows: a 5x call count
           (amplifying the dispatch loop over fixed program-startup cost,
           which the clones slightly enlarge), a doubled OLS quota, and
           the median ratio over interleaved repetitions — one-sided
           noise (a GC wave, clock scaling) lands on single repetitions,
           never the median, where the table's one-shot sampling cannot
           hold the ratio steady between measurements *)
        let quota = 0.5 in
        let ov_r = W.dispatch_overloaded ~size ~calls:(calls * 5) in
        let direct_r = W.dispatch_direct ~size ~calls:(calls * 5) in
        let cdir_r = compile direct_r in
        let cs_r = specialised ov_r in
        let median_ratio dir spec =
          let rs =
            List.init 3 (fun k ->
                let d = dir (string_of_int k) and s = spec (string_of_int k) in
                s /. d)
          in
          List.nth (List.sort compare rs) 1
        in
        let t_spec_vs_dir =
          median_ratio
            (fun k ->
              B.time_ns ~quota ("e2-dir-r" ^ k) (fun () ->
                  ignore (Pipeline.exec cdir_r)))
            (fun k ->
              B.time_ns ~quota ("e2-spec-r" ^ k) (fun () ->
                  ignore (Pipeline.exec cs_r)))
        in
        let t_spec_vs_dir_vm =
          median_ratio
            (fun k -> vm_time_of ~quota ("e2-dir-vm-r" ^ k) cdir_r)
            (fun k -> vm_time_of ~quota ("e2-spec-vm-r" ^ k) cs_r)
        in
        let sz = i size in
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("dispatch_ms/size=" ^ sz) (B.ms_of_ns t_ov);
        B.record ~experiment:"e2" ~backend:"vm"
          ~metric:("dispatch_ms/size=" ^ sz) (B.ms_of_ns t_vm);
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("direct_ms/size=" ^ sz) (B.ms_of_ns t_dir);
        B.record ~experiment:"e2" ~backend:"vm"
          ~metric:("direct_ms/size=" ^ sz) (B.ms_of_ns t_dir_vm);
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("spec_ms/size=" ^ sz) (B.ms_of_ns t_spec);
        B.record ~experiment:"e2" ~backend:"vm"
          ~metric:("spec_ms/size=" ^ sz) (B.ms_of_ns t_spec_vm);
        (* the E2 SLO pair: specialized dispatch vs the direct twin, as a
           ratio (unitless, so the gate checks it absolutely instead of
           normalizing by the run's median) — and the machine-independent
           proof that the dispatch is gone, not merely cheaper *)
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("spec_vs_direct/size=" ^ sz) t_spec_vs_dir;
        B.record ~experiment:"e2" ~backend:"vm"
          ~metric:("spec_vs_direct/size=" ^ sz) t_spec_vs_dir_vm;
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("spec_selections/size=" ^ sz)
          (float_of_int c_spec.selections);
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("selections/size=" ^ sz) (float_of_int c_ov.selections);
        let hot, hot_count = hot_site ov in
        B.record ~experiment:"e2" ~backend:"tree"
          ~metric:("hot_site_sels/size=" ^ sz) (float_of_int hot_count);
        [ sz;
          i c_dir.steps; i c_ov.steps; i c_ov.selections; i c_spec.selections;
          B.f2 (B.ms_of_ns t_dir); B.f2 (B.ms_of_ns t_ov);
          B.f2 (B.ms_of_ns t_spec);
          B.pct ((t_ov -. t_dir) /. t_dir *. 100.);
          B.f2 (B.ms_of_ns t_vm); B.f2 (t_ov /. t_vm) ^ "x"; hot ])
      [ 0; 10; 100 ]
  in
  B.print_table
    [ "body size"; "steps direct"; "steps dict"; "selections"; "spec sels";
      "direct (ms)"; "dict (ms)"; "spec (ms)"; "overhead"; "vm dict (ms)";
      "vm speedup"; "hot site (profile)" ]
    rows;
  B.print_note "  (dispatch adds one selection per call; relative cost shrinks as \
          the method body grows;@.   the profile column names the call site \
          carrying the dispatch load; the spec columns@.   replay that profile \
          through the specializer — clones at Int, zero selections left)"

let e3 () =
  B.print_heading "E3" "cost of passing dictionaries through calls"
    "\"passing and storing extra arguments to overloaded functions will incur \
     slightly more function call overhead\" (§9)";
  let rows =
    List.map
      (fun n ->
        let ov = W.overloaded_sum n and mono = W.monomorphic_sum n in
        let c_ov = run_counters ov and c_mono = run_counters mono in
        let t_ov = run_time "e3-ov" ov and t_mono = run_time "e3-mono" mono in
        let t_vm = vm_time "e3-ov-vm" ov in
        let d = i n in
        B.record ~experiment:"e3" ~backend:"tree"
          ~metric:("dict_ms/depth=" ^ d) (B.ms_of_ns t_ov);
        B.record ~experiment:"e3" ~backend:"vm"
          ~metric:("dict_ms/depth=" ^ d) (B.ms_of_ns t_vm);
        B.record ~experiment:"e3" ~backend:"tree"
          ~metric:("mono_ms/depth=" ^ d) (B.ms_of_ns t_mono);
        [ d; i c_mono.applications; i c_ov.applications;
          i c_ov.selections;
          B.f2 (B.ms_of_ns t_mono); B.f2 (B.ms_of_ns t_ov);
          B.f2 (B.ms_of_ns t_vm) ])
      [ 100; 400; 1600 ]
  in
  B.print_table
    [ "depth"; "apps mono"; "apps dict"; "selections"; "mono (ms)";
      "dict (ms)"; "vm dict (ms)" ]
    rows

let e4 () =
  B.print_heading "E4" "specialization eliminates dispatch"
    "\"it is possible to completely eliminate dynamic method dispatch within \
     an overloaded function at specific overloadings by creating type \
     specific clones\" (§9)";
  let src =
    {|
main = ( sum (enumFromTo 1 200)
       , member 77 (enumFromTo 1 200)
       , str (maximum [3,1,2]) )
|}
  in
  let spec = Opt.[ Simplify; Specialise; Simplify; Dce ] in
  let before = run_counters src and after = run_counters ~passes:spec src in
  let t_before = run_time "e4-before" src
  and t_after = run_time ~passes:spec "e4-after" src in
  B.print_table
    [ "variant"; "dict-constructions"; "selections"; "apps"; "time (ms)" ]
    [
      [ "dictionary passing"; i before.dict_constructions; i before.selections;
        i before.applications; B.f2 (B.ms_of_ns t_before) ];
      [ "specialized clones"; i after.dict_constructions; i after.selections;
        i after.applications; B.f2 (B.ms_of_ns t_after) ];
    ]

let e5 () =
  B.print_heading "E5" "repeated dictionary construction in recursion (§8.8)"
    "\"many implementations of this definition will repeat the construction \
     of the dictionary eqDList d at each step of the recursion\" — fixed by \
     hoisting to fully-lazy form";
  let hoist = Opt.[ Simplify; Inner_entry; Hoist ] in
  let rows =
    List.map
      (fun n ->
        let src = W.chain_member n in
        let naive = run_counters src in
        let hoisted = run_counters ~passes:hoist src in
        let t_tree = run_time ~passes:hoist "e5-tree" src in
        let t_vm = vm_time ~passes:hoist "e5-vm" src in
        let len = i n in
        B.record ~experiment:"e5" ~backend:"tree"
          ~metric:("hoisted_ms/len=" ^ len) (B.ms_of_ns t_tree);
        B.record ~experiment:"e5" ~backend:"vm"
          ~metric:("hoisted_ms/len=" ^ len) (B.ms_of_ns t_vm);
        B.record ~experiment:"e5" ~backend:"tree"
          ~metric:("dicts_naive/len=" ^ len)
          (float_of_int naive.dict_constructions);
        B.record ~experiment:"e5" ~backend:"tree"
          ~metric:("dicts_hoisted/len=" ^ len)
          (float_of_int hoisted.dict_constructions);
        [ len; i naive.dict_constructions; i hoisted.dict_constructions;
          i naive.selections; i hoisted.selections;
          B.f2 (B.ms_of_ns t_tree); B.f2 (B.ms_of_ns t_vm) ])
      [ 50; 100; 200; 400 ]
  in
  B.print_table
    [ "list length"; "dicts naive"; "dicts hoisted"; "sels naive";
      "sels hoisted"; "tree (ms)"; "vm (ms)" ]
    rows;
  B.print_note "  (naive grows linearly; hoisted is constant — the paper's O(n) -> \
          O(1))"

let e6 () =
  B.print_heading "E6" "nested vs flattened dictionaries (§8.1)"
    "\"flattening dictionaries ... slows down dictionary construction but \
     speeds up selection operations\"";
  let calls = 200 in
  let rows =
    List.map
      (fun depth ->
        let src = W.hierarchy ~depth ~calls in
        let nested = run_counters src in
        let flat = run_counters ~opts:flat_opts src in
        [ i depth;
          i nested.selections; i flat.selections;
          i nested.dict_constructions; i flat.dict_constructions;
          i nested.dict_fields; i flat.dict_fields ])
      [ 1; 2; 3; 5 ]
  in
  B.print_table
    [ "hierarchy depth"; "sels nested"; "sels flat";
      "dicts nested"; "dicts flat";
      "fields nested"; "fields flat" ]
    rows;
  B.print_note "  (method reach: selection chains grow with depth under the nested \
          layout, one hop when flat;@.   superclass-dictionary extraction: \
          free selections when nested, a fresh repack per use when flat —@.   \
          the paper's construction-vs-selection trade-off)"

let e7 () =
  B.print_heading "E7" "dictionaries vs run-time tag dispatch (§3)"
    "tags dispatch on every use at run time and \"it is not possible to \
     implement functions where the overloading is defined by the returned \
     type\"";
  let src = W.tag_friendly 200 in
  let dict_c = run_counters src in
  let tags = Pipeline.compile ~opts:tags_opts src in
  let tags_c = (Pipeline.exec tags).counters in
  let t_dict = run_time "e7-dict" src in
  let t_tags = B.time_ns "e7-tags" (fun () -> ignore (Pipeline.exec tags)) in
  B.print_table
    [ "strategy"; "dict-constructions"; "selections"; "tag-dispatches";
      "steps"; "time (ms)" ]
    [
      [ "dictionaries"; i dict_c.dict_constructions; i dict_c.selections;
        i dict_c.tag_dispatches; i dict_c.steps; B.f2 (B.ms_of_ns t_dict) ];
      [ "run-time tags"; i tags_c.dict_constructions; i tags_c.selections;
        i tags_c.tag_dispatches; i tags_c.steps; B.f2 (B.ms_of_ns t_tags) ];
    ];
  (match Pipeline.compile ~opts:tags_opts {|main = (parse "42" :: Int)|} with
   | exception Tc_support.Diagnostic.Error _ ->
       B.print_note "  return-type overloading (parse): dictionaries OK, tags \
               REJECTED at compile time, as §3 predicts"
   | _ -> B.print_note "  UNEXPECTED: tags accepted return-type overloading")

let e8 () =
  B.print_heading "E8" "code that does not use overloading pays nothing"
    "\"for code which does not use overloaded functions (but still may use \
     method functions) the class system adds no overhead at all since the \
     specific instance functions are called directly\" (§9)";
  let n = 500 in
  let prim = W.monomorphic_pipeline n in
  let ov = W.overloaded_pipeline n in
  let c_prim = run_counters prim in
  let c_ov = run_counters ov in
  let c_ov_opt = run_counters ~passes:[ Opt.Simplify ] ov in
  B.print_table
    [ "variant"; "dict-constructions"; "selections"; "apps"; "steps" ]
    [
      [ "primitive calls";
        i c_prim.dict_constructions; i c_prim.selections;
        i c_prim.applications; i c_prim.steps ];
      [ "methods at known type (Int)";
        i c_ov.dict_constructions; i c_ov.selections;
        i c_ov.applications; i c_ov.steps ];
      [ "  + simplify";
        i c_ov_opt.dict_constructions; i c_ov_opt.selections;
        i c_ov_opt.applications; i c_ov_opt.steps ];
    ];
  B.print_note "  (methods at a known type compile to direct calls to the instance \
          functions — zero dictionary operations)"

let e9 () =
  B.print_heading "E9" "where checker time goes"
    "\"a minor increase in the cost of unification and the placement and \
     resolution of placeholders make up the majority of the extra processing \
     required for type classes\" (§9)";
  let rows =
    List.map
      (fun n ->
        let src = W.checker_workload n in
        let c = compile src in
        let s = c.checker_stats in
        let class_work =
          s.context_propagations + s.context_reductions + s.holes_created
          + s.holes_resolved
        in
        [ i n; i s.unifications; i s.context_propagations;
          i s.context_reductions; i s.holes_created;
          B.f1 (100. *. float class_work /. float (s.unifications + class_work))
          ^ "%" ])
      [ 10; 30; 60 ]
  in
  B.print_table
    [ "functions"; "unifications"; "ctx-propagations"; "ctx-reductions";
      "placeholders"; "class-machinery share" ]
    rows

let e10 () =
  B.print_heading "E10" "inner entry points for recursive calls (§6.3/§7)"
    "\"the need to pass dictionaries to inner recursive calls can be \
     eliminated by using an inner entry point where the dictionaries have \
     already been bound\"";
  let inner = Opt.[ Simplify; Inner_entry ] in
  let rows =
    List.map
      (fun n ->
        let src = W.overloaded_sum n in
        let plain = run_counters ~passes:[ Opt.Simplify ] src in
        let opt = run_counters ~passes:inner src in
        [ i n; i plain.applications; i opt.applications;
          i (plain.applications - opt.applications) ])
      [ 100; 400; 1600 ]
  in
  B.print_table
    [ "recursion depth"; "apps (dicts re-passed)"; "apps (inner entry)";
      "saved" ]
    rows

(* ================================================================== *)
(* Ablations: design choices DESIGN.md calls out beyond the paper's    *)
(* claims.                                                             *)
(* ================================================================== *)

let a1 () =
  B.print_heading "A1" "ablation: overloaded integer literals"
    "Haskell-style literals (fromInt n :: Num a => a) vs ML-style \
     monomorphic Int literals — what the generality costs";
  let mono_opts =
    { Pipeline.default_options with overloaded_literals = false }
  in
  let src =
    {|
poly :: Num a => a -> a
poly x = 3 * x + 1
main = (sum (enumFromTo 1 200), poly (7 :: Int), poly 2.5)
|}
  in
  let src_mono =
    (* the Float use must go through fromIntegral explicitly *)
    {|
poly :: Num a => a -> a
poly x = fromIntegral 3 * x + fromIntegral 1
main = (sum (enumFromTo 1 200), poly (7 :: Int), poly 2.5)
|}
  in
  let ov = run_counters src in
  let mono = run_counters ~opts:mono_opts src_mono in
  let ov_stats = (compile src).checker_stats in
  let mono_stats = (compile ~opts:mono_opts src_mono).checker_stats in
  B.print_table
    [ "literals"; "placeholders"; "unifications"; "run selections"; "run steps" ]
    [
      [ "overloaded"; i ov_stats.holes_created; i ov_stats.unifications;
        i ov.selections; i ov.steps ];
      [ "monomorphic"; i mono_stats.holes_created; i mono_stats.unifications;
        i mono.selections; i mono.steps ];
    ];
  B.print_note "  (overloaded literals cost one placeholder each at check time; \
          at known types they@.   resolve to direct fromInt calls, so \
          run-time costs stay comparable)"

let a2 () =
  B.print_heading "A2" "ablation: lazy vs strict evaluation of the translation"
    "the paper targets lazy Haskell; the same dictionary translation under \
     call-by-value shifts thunk work to eager work at unchanged dictionary \
     counts";
  let src =
    {|
qsort :: Ord a => [a] -> [a]
qsort [] = []
qsort (x:xs) = qsort (filter (\y -> y <= x) xs) ++ [x] ++ qsort (filter (\y -> y > x) xs)
main = (length (qsort (enumFromTo 1 60)), sum (enumFromTo 1 200))
|}
  in
  let c = compile src in
  let lz = (Pipeline.exec ~mode:`Lazy c).counters in
  let strict = (Pipeline.exec ~mode:`Strict c).counters in
  B.print_table
    [ "mode"; "dicts"; "selections"; "apps"; "forces"; "steps" ]
    [
      [ "lazy"; i lz.dict_constructions; i lz.selections; i lz.applications;
        i lz.thunk_forces; i lz.steps ];
      [ "strict"; i strict.dict_constructions; i strict.selections;
        i strict.applications; i strict.thunk_forces; i strict.steps ];
    ]

let e11 () =
  B.print_heading "E11" "budget-check overhead (resilience layer)"
    "cost of the unified resource-budget checks in the interpreter hot \
     loops: unlimited budget (checks short-circuit) vs generous finite \
     limits (every check active, none fires), on both back ends";
  let src = W.chain_member 200 in
  (* big enough that no limit fires: the overhead measured is pure
     bookkeeping, not early exit *)
  let active =
    {
      Pipeline.Budget.steps = max_int / 2;
      frames = 500_000;
      wall_ms = 3.6e6;
      allocations = max_int / 2;
      output_bytes = max_int / 2;
    }
  in
  let c = Pipeline.optimize [] (compile src) in
  let cons = Tc_eval.Eval.con_table_of_env c.env in
  let prog = Tc_vm.Compile.program ~mode:`Lazy ~cons c.core in
  let tree budget name =
    B.time_ns name (fun () -> ignore (Pipeline.exec ~budget c))
  in
  let vm budget name =
    B.time_ns name (fun () ->
        ignore (Tc_vm.Vm.run (Tc_vm.Vm.create_state ~budget cons) prog))
  in
  let t_off = tree Pipeline.Budget.unlimited "e11-tree-off" in
  let t_on = tree active "e11-tree-on" in
  let v_off = vm Pipeline.Budget.unlimited "e11-vm-off" in
  let v_on = vm active "e11-vm-on" in
  let pct off on = 100. *. (on -. off) /. off in
  (* metrics spans: the same workload with a live registry attached
     (every exec reports eval/render spans) vs the default disabled
     registry (t_off above); disabled must be within noise of baseline *)
  let c_metrics =
    Pipeline.optimize []
      (Pipeline.compile
         ~opts:
           { Pipeline.default_options with metrics = Tc_obs.Metrics.create () }
         src)
  in
  let t_mon =
    B.time_ns "e11-tree-metrics-on" (fun () ->
        ignore (Pipeline.exec ~budget:Pipeline.Budget.unlimited c_metrics))
  in
  B.record ~experiment:"e11" ~backend:"tree" ~metric:"budget_off_ms"
    (B.ms_of_ns t_off);
  B.record ~experiment:"e11" ~backend:"tree" ~metric:"budget_on_ms"
    (B.ms_of_ns t_on);
  B.record ~experiment:"e11" ~backend:"tree" ~metric:"overhead_pct"
    (pct t_off t_on);
  B.record ~experiment:"e11" ~backend:"vm" ~metric:"budget_off_ms"
    (B.ms_of_ns v_off);
  B.record ~experiment:"e11" ~backend:"vm" ~metric:"budget_on_ms"
    (B.ms_of_ns v_on);
  B.record ~experiment:"e11" ~backend:"vm" ~metric:"overhead_pct"
    (pct v_off v_on);
  B.record ~experiment:"e11" ~backend:"tree" ~metric:"metrics_off_ms"
    (B.ms_of_ns t_off);
  B.record ~experiment:"e11" ~backend:"tree" ~metric:"metrics_on_ms"
    (B.ms_of_ns t_mon);
  B.record ~experiment:"e11" ~backend:"tree" ~metric:"metrics_overhead_pct"
    (pct t_off t_mon);
  B.print_table
    [ "backend"; "budgets off (ms)"; "budgets on (ms)"; "overhead %" ]
    [
      [ "tree"; B.f2 (B.ms_of_ns t_off); B.f2 (B.ms_of_ns t_on);
        B.f2 (pct t_off t_on) ];
      [ "vm"; B.f2 (B.ms_of_ns v_off); B.f2 (B.ms_of_ns v_on);
        B.f2 (pct v_off v_on) ];
    ];
  B.print_table
    [ "metrics registry"; "time (ms)"; "vs disabled %" ]
    [
      [ "disabled (default)"; B.f2 (B.ms_of_ns t_off); "-" ];
      [ "live (spans on)"; B.f2 (B.ms_of_ns t_mon);
        B.f2 (pct t_off t_mon) ];
    ];
  B.print_note
    "  (the hot-loop check is one decrement-and-compare per step; the \
     wall clock is only read every 4096 steps; a disabled metrics \
     registry costs nothing — bumps are mutations of a shared dummy)"

let e12 () =
  B.print_heading "E12" "per-request tracing overhead (flight recorder)"
    "cost of the rtrace flight recorder on the serve request loop: \
     disabled (the default) vs sampling 1 request in 64 (the production \
     setting) vs recording every request; the sampled cost must stay \
     within noise of disabled";
  let module Serve = Typeclasses.Serve in
  let module Rtrace = Tc_obs.Rtrace in
  let line =
    Tc_obs.Json.to_line
      (Tc_obs.Json.Obj
         [ ("op", Tc_obs.Json.Str "run");
           ("src", Tc_obs.Json.Str (W.chain_member 30)) ])
  in
  let server rt =
    Serve.create
      ~config:
        { Serve.default_config with Serve.sleep = (fun _ -> ()); rtrace = rt }
      ()
  in
  (* the E12 SLO is an exact <= 2% bound on an effect that is truly
     near zero, which is tighter than Bechamel-session noise: two OLS
     sessions run seconds apart drift by several percent (GC waves,
     frequency scaling), so even a median over session-level ratios
     cannot hold the bound. Pair at per-request granularity instead:
     each round times one request on the disabled server and one on
     each traced server back-to-back (order alternating), and the
     reported overhead is the median of per-round ratios — drift is
     shared by both sides of every ratio, and a one-sided spike (a
     major-GC slice) lands on single rounds, never the median *)
  let t_off_srv = server Rtrace.disabled in
  let t_on_srv = server (Rtrace.create ~sample:64 ()) in
  let t_all_srv = server (Rtrace.create ~sample:1 ()) in
  let once t =
    let a = Tc_support.Mono.now_ns () in
    ignore (Serve.handle_line t line);
    float_of_int (Tc_support.Mono.now_ns () - a)
  in
  for _ = 1 to 10 do
    ignore (once t_off_srv);
    ignore (once t_on_srv);
    ignore (once t_all_srv)
  done;
  let reps = 201 in
  let rounds =
    List.init reps (fun k ->
        if k mod 2 = 0 then
          let off = once t_off_srv in
          let on = once t_on_srv in
          let all = once t_all_srv in
          (off, on, all)
        else
          let all = once t_all_srv in
          let on = once t_on_srv in
          let off = once t_off_srv in
          (off, on, all))
  in
  let med xs = List.nth (List.sort compare xs) (List.length xs / 2) in
  let t_off = med (List.map (fun (off, _, _) -> off) rounds) in
  let t_on = med (List.map (fun (_, on, _) -> on) rounds) in
  let t_all = med (List.map (fun (_, _, all) -> all) rounds) in
  let ratio = med (List.map (fun (off, on, _) -> on /. off) rounds) in
  let ratio_all = med (List.map (fun (off, _, all) -> all /. off) rounds) in
  B.record ~experiment:"e12" ~backend:"tree" ~metric:"traced_off_ms"
    (B.ms_of_ns t_off);
  B.record ~experiment:"e12" ~backend:"tree" ~metric:"sampled64_ms"
    (B.ms_of_ns t_on);
  (* the SLO row: unitless, gated absolutely at <= 2 *)
  B.record ~experiment:"e12" ~backend:"tree" ~metric:"sampled64_overhead_pct"
    ((ratio -. 1.) *. 100.);
  B.record ~experiment:"e12" ~backend:"tree" ~metric:"traced_all_ms"
    (B.ms_of_ns t_all);
  B.record ~experiment:"e12" ~backend:"tree" ~metric:"traced_all_overhead_pct"
    ((ratio_all -. 1.) *. 100.);
  B.print_table
    [ "flight recorder"; "request (ms)"; "vs disabled %" ]
    [
      [ "disabled (default)"; B.f2 (B.ms_of_ns t_off); "-" ];
      [ "sampled 1/64"; B.f2 (B.ms_of_ns t_on);
        B.f2 ((ratio -. 1.) *. 100.) ];
      [ "every request"; B.f2 (B.ms_of_ns t_all);
        B.f2 ((ratio_all -. 1.) *. 100.) ];
    ];
  B.print_note
    "  (an unsampled request costs one atomic ID mint and a handful of \
     integer compares; a sampled one appends fixed-size events to a \
     per-domain ring — no I/O until a dump is requested)"

let a3 () =
  B.print_heading "A3" "ablation: what each optimizer pass contributes"
    "cumulative effect of simplify / inner-entry / hoist / specialise on \
     one overloading-heavy workload";
  let src = W.chain_member 150 in
  let rows =
    List.map
      (fun (name, passes) ->
        let c = run_counters ~passes src in
        [ name; i c.dict_constructions; i c.selections; i c.applications;
          i c.steps ])
      [
        ("none", []);
        ("simplify", [ Opt.Simplify ]);
        ("+ inner-entry", Opt.[ Simplify; Inner_entry ]);
        ("+ hoist", Opt.[ Simplify; Inner_entry; Hoist ]);
        ("+ specialise (all)", Opt.all);
      ]
  in
  B.print_table [ "pipeline"; "dicts"; "selections"; "apps"; "steps" ] rows

(* ================================================================== *)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("a1", a1); ("a2", a2); ("a3", a3) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  B.json_mode := List.mem "--json" args;
  (* --out DIR: where the per-experiment BENCH_<EXP>.json files land
     (committed baselines live at the repo root; CI writes fresh runs to
     a scratch dir so they never clobber the trajectory) *)
  let rec strip_out acc = function
    | [] -> List.rev acc
    | "--out" :: dir :: rest ->
        B.out_dir := dir;
        strip_out acc rest
    | a :: rest -> strip_out (a :: acc) rest
  in
  let args = strip_out [] args in
  let names =
    List.filter (fun a -> a <> "--json") args
    |> List.map String.lowercase_ascii
  in
  let selected = if names = [] then List.map fst experiments else names in
  if not !B.json_mode then begin
    Fmt.pr "Reproduction harness for \"Implementing Type Classes\" (Peterson & \
            Jones, PLDI 1993)@.";
    Fmt.pr "Operation counts are machine-independent; times are Bechamel OLS \
            estimates on this machine.@."
  end;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None -> Fmt.epr "unknown experiment %s@." name)
    selected;
  if !B.json_mode then B.dump_json ()
