#!/usr/bin/env python3
"""Bench regression gate: compare a fresh benchmark run against the
committed trajectory (BENCH_E<k>.json files at the repo root).

Wall-clock numbers are machine-dependent, so raw new/old ratios are
useless across CI runners. Instead the gate normalizes by the median
ratio across every compared *_ms metric: a uniformly slower machine
shifts all ratios equally and the median divides that shift out, while a
genuine regression in one experiment sticks out above the rest. A metric
fails when its normalized ratio exceeds the threshold (default 1.25,
i.e. >25% slower than the run's overall speed shift).

Only the experiments named with --gate (default e2 and e11) can fail the
gate; every other shared experiment still contributes to the median.
Missing baselines are a clean skip (exit 0 with a message), so the gate
never blocks a fresh repo or a new experiment.

Besides the relative (trajectory) gate, --slo rows check absolute bounds
against the fresh run only: "serve/p99_ms/hot<=2000" fails the gate when
the new run's serve experiment reports a hot p99 above 2 seconds, and
"serve/hot_speedup>=2" fails when the compile cache stops paying for
itself. A metric recorded for several backends (the E2 specialization
ratios exist for tree and vm) must satisfy the bound on every backend.
Most SLO bounds are deliberately loose — they catch order-of-magnitude
collapses, not machine noise; the E2 specialization SLOs are exact
claims ("e2/spec_vs_direct/size=100<=1.0": profile-guided clones make
overloaded dispatch no slower than direct calls on both backends, and
"e2/spec_selections/size=100<=0": the dispatch is eliminated, not just
cheapened — ratios are unitless, so they skip median normalization and
compare across machines).

A missing or unparseable BENCH_<EXP>.json on either side (a bench binary
that crashed mid-run, a partial artifact download) is a warning and a
skipped experiment, never an abort: one broken experiment must not mask
the comparison of the others.

Usage:
  python3 scripts/bench_gate.py [--baseline-dir .] [--new-dir bench-new]
                                [--gate e2 --gate e11] [--threshold 1.25]
                                [--slo EXPR ...]
"""

import argparse
import json
import os
import statistics
import sys


def load(path):
    """BENCH_<EXP>.json -> {(experiment, backend, metric): value},
    or None (with a warning) when the file is missing or malformed."""
    try:
        with open(path) as f:
            rows = json.load(f)
        return {
            (r["experiment"], r["backend"], r["metric"]): float(r["value"])
            for r in rows
        }
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"bench-gate: WARNING — cannot read {path} ({e}); "
              f"skipping this experiment")
        return None


def parse_slo(expr):
    """'exp/metric<=bound' or 'exp/metric>=bound' ->
    (experiment, metric, op, bound)."""
    for op in ("<=", ">="):
        if op in expr:
            lhs, bound = expr.split(op, 1)
            exp, _, metric = lhs.partition("/")
            if not exp or not metric:
                raise ValueError(f"malformed SLO {expr!r}: want exp/metric")
            return exp, metric, op, float(bound)
    raise ValueError(f"malformed SLO {expr!r}: want <= or >=")


def check_slos(slos, new_dir):
    """Absolute bounds against the fresh run. Returns failure count;
    metrics absent from the run warn and skip (the tolerance rule)."""
    failures = 0
    for expr in slos:
        exp, metric, op, bound = parse_slo(expr)
        path = os.path.join(new_dir, f"BENCH_{exp.upper()}.json")
        rows = load(path)
        if rows is None:
            continue
        values = [(b, v) for (e, b, m), v in rows.items()
                  if e == exp and m == metric]
        if not values:
            print(f"bench-gate: WARNING — SLO {expr}: metric "
                  f"{exp}/{metric} not in {path}; skipping")
            continue
        # a metric recorded for several backends must hold on every one
        # (the E2 specialization SLO covers tree and vm with one bound)
        for backend, value in sorted(values):
            ok = value <= bound if op == "<=" else value >= bound
            status = "ok" if ok else "FAIL"
            print(f"  [slo] {exp}/{backend}/{metric} = {value:.3f} "
                  f"{op} {bound:g}: {status}")
            if not ok:
                failures += 1
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir", default=".")
    ap.add_argument("--new-dir", default="bench-new")
    ap.add_argument("--gate", action="append", default=[],
                    help="experiment that can fail the gate (repeatable; "
                         "default: e2 e11)")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="max allowed normalized new/old ratio (default 1.25)")
    ap.add_argument("--slo", action="append", default=[],
                    help="absolute bound on the fresh run, e.g. "
                         "'serve/p99_ms/hot<=2000' or 'serve/hot_speedup>=2' "
                         "(repeatable)")
    args = ap.parse_args()
    gated = [g.lower() for g in (args.gate or ["e2", "e11"])]
    slo_failures = check_slos(args.slo, args.new_dir)

    # pair up BENCH_<EXP>.json files present on both sides
    pairs = []
    for name in sorted(os.listdir(args.new_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        base = os.path.join(args.baseline_dir, name)
        new = os.path.join(args.new_dir, name)
        if os.path.exists(base):
            pairs.append((name, base, new))
        else:
            print(f"bench-gate: no committed baseline {name}; skipping it")

    if not pairs:
        print("bench-gate: no baselines to compare against — skipping "
              "(commit BENCH_E*.json files to enable the gate)")
        return 1 if slo_failures else 0

    # ratios over every shared wall-clock metric, for the machine-speed
    # median; tiny baselines are noise, not signal
    ratios = {}
    for name, base, new in pairs:
        b, n = load(base), load(new)
        if b is None or n is None:
            continue
        for key in sorted(set(b) & set(n)):
            # wall-clock metrics are "<name>_ms" or "<name>_ms/<label>"
            if not key[2].split("/")[0].endswith("_ms"):
                continue
            if b[key] < 0.01 or n[key] <= 0.0:
                continue
            ratios[key] = n[key] / b[key]

    if not ratios:
        print("bench-gate: no comparable *_ms metrics — skipping")
        return 1 if slo_failures else 0

    median = statistics.median(ratios.values())
    print(f"bench-gate: {len(ratios)} wall-clock metrics, "
          f"median new/old ratio {median:.3f} (machine-speed shift)")

    failures = []
    for (exp, backend, metric), ratio in sorted(ratios.items()):
        norm = ratio / median
        flag = ""
        if exp in gated and norm > args.threshold:
            failures.append((exp, backend, metric, norm))
            flag = "  << REGRESSION"
        gate = "gate" if exp in gated else "info"
        print(f"  [{gate}] {exp}/{backend}/{metric}: ratio {ratio:.3f} "
              f"normalized {norm:.3f}{flag}")

    if failures:
        print(f"bench-gate: FAIL — {len(failures)} metric(s) more than "
              f"{(args.threshold - 1) * 100:.0f}% slower than the "
              f"trajectory after normalization:")
        for exp, backend, metric, norm in failures:
            print(f"  {exp}/{backend}/{metric}: {norm:.2f}x")
        return 1

    if slo_failures:
        print(f"bench-gate: FAIL — {slo_failures} SLO bound(s) violated")
        return 1

    print("bench-gate: OK — no gated metric regressed beyond "
          f"{(args.threshold - 1) * 100:.0f}% and all SLO bounds hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
